(** Multi-client TCP front end for the compilation service.

    One listener on loopback, one OCaml domain per accepted client,
    each running the stdin-identical {!Session} loop over its own
    {!Vqc_service.Service} — private plan cache, private admission
    queue, private epoch cursor ({!Vqc_service.Epoch.fork}) — while
    sharing two correctness-neutral resources across sessions: the
    worker {!Vqc_engine.Pool} (safe for concurrent [map] calls) and a
    content-addressed compile store (see
    {!Vqc_service.Service.shared_store}) that turns one client's
    compile into every client's warm hit.

    Isolation model: anything that could make one client's response
    bytes depend on another client's traffic is per-session; anything
    shared is invisible outside latency, metrics and the ["nd"]
    response section.  The determinism test wall
    ([test/test_serve_net.ml]) holds concurrent response streams to
    their single-client golden runs across shard counts, worker counts
    and client counts.

    Beyond [clients_max] concurrent clients, a new connection receives
    one [rejected] line (reason [server_full], code [VQC131]) and is
    closed — connection-level load shedding, mirroring the [VQC130]
    per-request admission rejection inside a session.

    Metrics: [serve.net.connections], [serve.net.rejected],
    [serve.net.sessions] (live-session gauge); per-session service
    traffic lands under [service.*], the shared store under
    [serve.store.*]. *)

type config = {
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  clients_max : int;  (** concurrent-session cap (>= 1) *)
  session : Session.config;
  service : Vqc_service.Service.config;
      (** per-session service configuration ([jobs] sizes the shared
          pool; [cache_shards] stripes both the session caches and the
          shared store) *)
  store_capacity : int;  (** shared compile store entries *)
}

val default_config : config
(** port 0 (ephemeral), 64 clients, default session/service configs,
    1024-entry store. *)

type t

val start : ?config:config -> Vqc_service.Epoch.t -> t
(** Bind, listen and start accepting on a background domain.  The
    given epoch rotation is the boot state every session forks from.
    Ignores [SIGPIPE] process-wide (a vanished client must not kill
    the server).
    @raise Invalid_argument on a bad [clients_max] or [port]
    @raise Unix.Unix_error when the port cannot be bound. *)

val port : t -> int
(** The bound port — the ephemeral port when [config.port] was 0. *)

val wait : t -> unit
(** Block until the accept loop exits (i.e. until {!stop} is called
    from another thread of control, or never). *)

val stop : t -> unit
(** Stop accepting, wait for the live sessions to finish (they end
    when their clients hang up), and shut the worker pool down.
    Idempotent. *)

type 'state problem = {
  start : 'state;
  is_goal : 'state -> bool;
  successors : 'state -> ('state * float) list;
  heuristic : 'state -> float;
  key : 'state -> string;
}

type 'state outcome = { goal : 'state; cost : float; expanded : int }

type 'state node = {
  state : 'state;
  g_cost : float;
  key : string;  (* problem.key state, computed once at push time *)
  parent : 'state node option;
}

let default_max_expansions = 200_000

let run ?(max_expansions = default_max_expansions) problem =
  let frontier = Pqueue.create () in
  let best_cost : (string, float) Hashtbl.t = Hashtbl.create 1024 in
  let push node =
    match Hashtbl.find_opt best_cost node.key with
    | Some c when c <= node.g_cost -> ()
    | _ ->
      Hashtbl.replace best_cost node.key node.g_cost;
      Pqueue.push frontier (node.g_cost +. problem.heuristic node.state) node
  in
  push
    {
      state = problem.start;
      g_cost = 0.0;
      key = problem.key problem.start;
      parent = None;
    };
  let expanded = ref 0 in
  let rec drain () =
    if !expanded >= max_expansions then None
    else
      match Pqueue.pop frontier with
      | None -> None
      | Some (_, node) ->
        (* skip stale queue entries superseded by a cheaper path *)
        let stale =
          match Hashtbl.find_opt best_cost node.key with
          | Some c -> c < node.g_cost
          | None -> false
        in
        if stale then drain ()
        else if problem.is_goal node.state then Some node
        else begin
          incr expanded;
          let expand (next, cost) =
            if cost < 0.0 then invalid_arg "Astar: negative move cost";
            push
              {
                state = next;
                g_cost = node.g_cost +. cost;
                key = problem.key next;
                parent = Some node;
              }
          in
          List.iter expand (problem.successors node.state);
          drain ()
        end
  in
  (* bind before pairing: tuple components evaluate right-to-left, so
     [(drain (), !expanded)] would read the counter before the search *)
  let outcome = drain () in
  (outcome, !expanded)

let search ?max_expansions problem =
  match run ?max_expansions problem with
  | None, _ -> None
  | Some node, expanded -> Some { goal = node.state; cost = node.g_cost; expanded }

let search_path ?max_expansions problem =
  match run ?max_expansions problem with
  | None, _ -> None
  | Some node, expanded ->
    let rec unwind node acc =
      let acc = node.state :: acc in
      match node.parent with None -> acc | Some p -> unwind p acc
    in
    Some (unwind node [], node.g_cost, expanded)

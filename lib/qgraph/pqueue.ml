(* Monomorphic int-keyed binary heap.  Priorities arrive as floats but
   are stored as their IEEE-754 bit patterns: for non-negative doubles
   the bits, read as a 63-bit integer, order exactly like the floats
   (sign bit clear, biased exponent then mantissa are lexicographic), so
   every sift comparison is a native [int] compare — no float loads, no
   polymorphic compare, and the heap shape (hence pop order among equal
   priorities) is identical to the float-compared heap it replaced. *)

type 'a t = {
  mutable prio : int array;
  mutable data : 'a array;
  mutable size : int;
}

let create () = { prio = [||]; data = [||]; size = 0 }

let length q = q.size

let is_empty q = q.size = 0

(* [Int64.bits_of_float p] lies in [0, 2^63) for every non-negative
   double (sign bit clear; -0.0 also encodes like +0.0, matching float
   equality), ordered exactly like the floats.  [Int64.to_int] keeps the
   low 63 bits — so doubles >= 2.0 (biased exponent bit 62 set) would
   wrap negative.  XORing the truncation with [min_int] flips that top
   bit, i.e. computes [bits - 2^62], an order-preserving shift of
   [0, 2^63) onto the native [int] range.  [decode] inverts the XOR and
   masks off the sign extension. *)
let encode p =
  if not (p >= 0.0) then
    invalid_arg "Pqueue.push: priority must be non-negative (and not NaN)";
  Int64.to_int (Int64.bits_of_float p) lxor min_int

let decode key =
  Int64.float_of_bits (Int64.logand (Int64.of_int (key lxor min_int)) Int64.max_int)

let grow q x =
  let capacity = Array.length q.prio in
  if q.size = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let prio = Array.make new_capacity 0 in
    let data = Array.make new_capacity x in
    Array.blit q.prio 0 prio 0 q.size;
    Array.blit q.data 0 data 0 q.size;
    q.prio <- prio;
    q.data <- data
  end

(* Indices below are in [0, size) by construction, so the sift loops use
   unsafe accesses. *)

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if Array.unsafe_get q.prio i < Array.unsafe_get q.prio parent then begin
      let pi = Array.unsafe_get q.prio i
      and di = Array.unsafe_get q.data i in
      Array.unsafe_set q.prio i (Array.unsafe_get q.prio parent);
      Array.unsafe_set q.data i (Array.unsafe_get q.data parent);
      Array.unsafe_set q.prio parent pi;
      Array.unsafe_set q.data parent di;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < q.size && Array.unsafe_get q.prio left < Array.unsafe_get q.prio !smallest
  then smallest := left;
  if
    right < q.size
    && Array.unsafe_get q.prio right < Array.unsafe_get q.prio !smallest
  then smallest := right;
  if !smallest <> i then begin
    let j = !smallest in
    let pi = Array.unsafe_get q.prio i and di = Array.unsafe_get q.data i in
    Array.unsafe_set q.prio i (Array.unsafe_get q.prio j);
    Array.unsafe_set q.data i (Array.unsafe_get q.data j);
    Array.unsafe_set q.prio j pi;
    Array.unsafe_set q.data j di;
    sift_down q j
  end

let push q prio x =
  let key = encode prio in
  grow q x;
  q.prio.(q.size) <- key;
  q.data.(q.size) <- x;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let prio = q.prio.(0) and x = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.prio.(0) <- q.prio.(q.size);
      q.data.(0) <- q.data.(q.size);
      sift_down q 0
    end;
    Some (decode prio, x)
  end

let peek q = if q.size = 0 then None else Some (decode q.prio.(0), q.data.(0))

let clear q = q.size <- 0

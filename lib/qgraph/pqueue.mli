(** Mutable binary-heap priority queue with non-negative [float]
    priorities.

    Lower priority values are served first.  Used by Dijkstra and by the A*
    searches in the mapper.  Duplicate insertions of the same payload are
    allowed; stale entries are the caller's concern (the usual
    "lazy-deletion" Dijkstra idiom).

    Internally the heap is keyed on the priorities' IEEE-754 bit patterns
    — an order isomorphism for non-negative doubles — so every comparison
    is a monomorphic [int] compare and pop order (ties included) is
    exactly that of a float-compared heap. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty queue. *)

val length : 'a t -> int
(** Number of queued entries (including any stale duplicates). *)

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q prio x] inserts [x] with priority [prio].
    @raise Invalid_argument if [prio] is negative or NaN (path costs and
    A* f-values are never negative; rejecting the rest keeps the int
    keying exact). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest priority. *)

val peek : 'a t -> (float * 'a) option
(** Return the smallest entry without removing it. *)

val clear : 'a t -> unit

open Vqc_circuit
module Astar = Vqc_graph.Astar
module Device = Vqc_device.Device

let log_src = Logs.Src.create "vqc.router" ~doc:"SWAP-insertion routing"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Metrics = Vqc_obs.Metrics
module Trace = Vqc_obs.Trace
module Span = Vqc_obs.Span
module Json = Vqc_obs.Json

(* Shared with Sabre (same names resolve to the same metrics): every
   routing pass adds its per-circuit totals once, at the end. *)
let routes_total = Metrics.counter "mapper.routes"
let swaps_total = Metrics.counter "mapper.swaps_inserted"
let expansions_total = Metrics.counter "mapper.astar_expansions"
let fallbacks_total = Metrics.counter "mapper.greedy_fallbacks"

type stats = {
  swaps_inserted : int;
  astar_expansions : int;
  greedy_fallbacks : int;
}

type result = {
  circuit : Circuit.t;
  initial : Layout.t;
  final : Layout.t;
  stats : stats;
}

let record_route ~router (stats : stats) =
  Metrics.incr routes_total;
  Metrics.add swaps_total stats.swaps_inserted;
  Metrics.add expansions_total stats.astar_expansions;
  Metrics.add fallbacks_total stats.greedy_fallbacks;
  if Trace.enabled () then
    Trace.emit ~source:"mapper" ~event:"route"
      [
        ("router", Json.String router);
        ("swaps_inserted", Json.Int stats.swaps_inserted);
        ("astar_expansions", Json.Int stats.astar_expansions);
        ("greedy_fallbacks", Json.Int stats.greedy_fallbacks);
      ]

let physical_pair layout (a, b) =
  (Layout.physical_of_program layout a, Layout.physical_of_program layout b)

let executable cost layout pairs =
  let device = Cost.device cost in
  List.for_all
    (fun pair ->
      let u, v = physical_pair layout pair in
      Device.connected device u v)
    pairs

(* ---- bridge execution (extension; see mli) ------------------------- *)

(* Cheapest middle qubit for a bridged CNOT between physical [u] and [v]
   (two CNOTs across each leg), if the pair sits at hop distance 2. *)
let bridge_middle cost u v =
  let device = Cost.device cost in
  if Device.connected device u v then None
  else begin
    let best = ref None in
    List.iter
      (fun m ->
        if Device.connected device m v then begin
          let total = 2.0 *. (Cost.cnot_cost cost u m +. Cost.cnot_cost cost m v) in
          match !best with
          | Some (best_total, _) when best_total <= total -> ()
          | _ -> best := Some (total, m)
        end)
      (Device.neighbors device u);
    !best
  end

(* A layer's two-qubit obligations: program CNOTs may execute bridged
   (when enabled), program SWAPs always need adjacency. *)
type obligation = { operands : int * int; bridgeable : bool }

let layer_obligations ~bridges layer =
  List.filter_map
    (fun gate ->
      match gate with
      | Gate.Cnot { control; target } ->
        Some { operands = (control, target); bridgeable = bridges }
      | Gate.Swap (a, b) -> Some { operands = (a, b); bridgeable = false }
      | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> None)
    layer

let obligation_satisfied cost layout { operands; bridgeable } =
  let u, v = physical_pair layout operands in
  Device.connected (Cost.device cost) u v
  || (bridgeable && bridge_middle cost u v <> None)

(* Cost of executing one obligation under the current layout. *)
let obligation_execution_cost cost layout { operands; bridgeable } =
  let u, v = physical_pair layout operands in
  if Device.connected (Cost.device cost) u v then Cost.cnot_cost cost u v
  else if bridgeable then
    match bridge_middle cost u v with
    | Some (total, _) -> total
    | None -> invalid_arg "Router: unsatisfied obligation at execution"
  else invalid_arg "Router: unsatisfied obligation at execution"

(* Mutable emission context shared by both routers. *)
type emitter = {
  mutable layout : Layout.t;
  mutable rev_gates : Gate.t list;
  mutable swaps : int;
}

let emit ctx gate = ctx.rev_gates <- gate :: ctx.rev_gates

let emit_swap ctx u v =
  emit ctx (Gate.Swap (u, v));
  ctx.swaps <- ctx.swaps + 1;
  ctx.layout <- Layout.swap_physical ctx.layout u v

let emit_relabeled ctx gate =
  emit ctx (Gate.relabel (Layout.physical_of_program ctx.layout) gate)

(* Move the occupant of [src] along [path] until it is adjacent to the
   path's last node, i.e. swap across every edge except the final one. *)
let walk_adjacent ctx path =
  let rec step = function
    | a :: (b :: _ :: _ as rest) ->
      emit_swap ctx a b;
      step rest
    | [ _; _ ] | [ _ ] | [] -> ()
  in
  step path

(* Move the occupant of the path's head all the way to its last node. *)
let walk_full ctx path =
  let rec step = function
    | a :: (b :: _ as rest) ->
      emit_swap ctx a b;
      step rest
    | [ _ ] | [] -> ()
  in
  step path

(* One-gate routing with no lookahead: pick the meeting coupler that
   minimizes route + execution cost, drag the first operand onto it, then
   bring the second operand adjacent. *)
let greedy_satisfy ctx cost (a, b) =
  let device = Cost.device cost in
  let adjacent () =
    let pa, pb = physical_pair ctx.layout (a, b) in
    Device.connected device pa pb
  in
  if not (adjacent ()) then begin
    let pa, pb = physical_pair ctx.layout (a, b) in
    let best = ref None in
    let consider anchor other total =
      match !best with
      | Some (best_total, _, _) when best_total <= total -> ()
      | _ -> best := Some (total, anchor, other)
    in
    List.iter
      (fun (x, y) ->
        let execution = Cost.cnot_cost cost x y in
        consider x y
          (Cost.distance cost pa x +. Cost.distance cost pb y +. execution);
        consider y x
          (Cost.distance cost pa y +. Cost.distance cost pb x +. execution))
      (Device.coupling device);
    match !best with
    | None -> invalid_arg "Router: device has no couplers"
    | Some (_, anchor, _) ->
      walk_full ctx (Cost.route cost pa anchor);
      if not (adjacent ()) then begin
        let _, pb = physical_pair ctx.layout (a, b) in
        walk_adjacent ctx (Cost.route cost pb anchor)
      end
  end

(* ---- layered A* routing -------------------------------------------

   States are layouts plus an [executed] flag.  From a layout in which
   every pair is adjacent, an "execute" transition pays the summed CNOT
   execution costs and reaches the terminal state.  This makes the
   search minimize route cost *and* execution-link cost together — under
   the reliability model a free adjacency across a terrible link is not
   a bargain (paper Algorithm 1: D covers the full cost to entangle). *)

type search_state = { layout : Layout.t; swap_count : int; executed : bool }

(* [default_lookahead] discounts the entangle cost of the following
   layer's gates, charged at the execute transition: optimizing one layer
   in isolation happily strands qubits in positions that cost the next
   layer dearly (Zulehner et al. use a lookahead for the same reason). *)
let default_lookahead = 0.5

let layer_search cost ~max_additional_hops ~max_expansions ~lookahead
    ~next_pairs layout obligations =
  let couplers = Device.coupling (Cost.device cost) in
  let physicals = Device.num_qubits (Cost.device cost) in
  let min_moves l =
    List.fold_left
      (fun acc { operands; bridgeable } ->
        let u, v = physical_pair l operands in
        let direct = Cost.hops_to_adjacency cost u v in
        acc + if bridgeable then max 0 (direct - 1) else direct)
      0 obligations
  in
  let budget =
    match max_additional_hops with
    | None -> max_int
    | Some mah -> min_moves layout + mah
  in
  let satisfied l = List.for_all (obligation_satisfied cost l) obligations in
  let execution_cost l =
    let this_layer =
      List.fold_left
        (fun acc obligation -> acc +. obligation_execution_cost cost l obligation)
        0.0 obligations
    in
    let next_layer =
      List.fold_left
        (fun acc (a, b) ->
          acc
          +. Cost.entangle_cost cost
               (Layout.physical_of_program l a)
               (Layout.physical_of_program l b))
        0.0 next_pairs
    in
    this_layer +. (lookahead *. next_layer)
  in
  (* one byte per physical qubit — rebuilt per expansion, so cheap beats
     general (a Hashtbl here dominated the successor-generation profile) *)
  let active l =
    let set = Bytes.make physicals '\000' in
    List.iter
      (fun { operands = a, b; _ } ->
        Bytes.unsafe_set set (Layout.physical_of_program l a) '\001';
        Bytes.unsafe_set set (Layout.physical_of_program l b) '\001')
      obligations;
    set
  in
  let successors state =
    if state.executed then []
    else begin
      let active_set = active state.layout in
      let touches u v =
        Bytes.unsafe_get active_set u = '\001'
        || Bytes.unsafe_get active_set v = '\001'
      in
      let swaps =
        List.filter_map
          (fun (u, v) ->
            if not (touches u v) then None
            else begin
              let layout = Layout.swap_physical state.layout u v in
              let next =
                { layout; swap_count = state.swap_count + 1; executed = false }
              in
              (* with no MAH budget the bound is [max_int] and the prune
                 can never fire — skip the [min_moves] recomputation *)
              if
                budget <> max_int
                && next.swap_count + min_moves layout > budget
              then None
              else Some (next, Cost.swap_cost cost u v)
            end)
          couplers
      in
      if satisfied state.layout then
        ({ state with executed = true }, execution_cost state.layout) :: swaps
      else swaps
    end
  in
  let heuristic state =
    if state.executed then 0.0
    else
      List.fold_left
        (fun acc { operands = a, b; _ } ->
          acc
          +. Cost.entangle_cost cost
               (Layout.physical_of_program state.layout a)
               (Layout.physical_of_program state.layout b))
        0.0 obligations
  in
  let problem =
    {
      Astar.start = { layout; swap_count = 0; executed = false };
      is_goal = (fun state -> state.executed);
      successors;
      heuristic;
      key =
        (fun state ->
          if state.executed then "X" ^ Layout.key state.layout
          else Layout.key state.layout);
    }
  in
  Astar.search_path ~max_expansions problem

(* ---- layer-search memo ---------------------------------------------

   The catalog x policy matrix re-routes the same circuits under
   overlapping policies: vqm's (layout, routing) candidates are a subset
   of vqa+vqm's, themselves a subset of vqa+vqm+readout's, and the
   hop-cost route is shared by five policies.  A layer search depends
   only on (cost table, current layout, the layer's obligations, the
   next layer's pairs, search parameters) — all captured in the key
   below — so its outcome can be replayed: emitting the recorded swap
   sequence reproduces the gates, layout, stats, and traces of
   re-running the search byte for byte.  Keying on {!Cost.id} (unique
   per table) means a hit can only replay a search that would have been
   identical; tables from plain [Cost.make] carry fresh ids and simply
   never hit — sharing comes from {!Cost.cached}.

   The table is process-wide (compiles run concurrently under the
   service pool, hence the mutex) and bounded: on overflow it is
   dropped wholesale — it is a memo, not a correctness structure. *)

type memo_entry = {
  found : bool;  (* [false] replays a failed search (expansion cap) *)
  memo_swaps : (int * int) list;  (* physical swaps in emission order *)
  memo_expanded : int;  (* expansions the original search charged *)
}

let memo_capacity = 32_768
let memo_lock = Mutex.create ()
(* guarded by memo_lock *)
let memo_table : (string, memo_entry) Hashtbl.t = Hashtbl.create 1024
let memo_hits = Metrics.counter "mapper.layer_memo_hits"
let memo_misses = Metrics.counter "mapper.layer_memo_misses"

let memo_clear () =
  Mutex.lock memo_lock;
  Hashtbl.reset memo_table;
  Mutex.unlock memo_lock

let memo_find key =
  Mutex.lock memo_lock;
  let entry = Hashtbl.find_opt memo_table key in
  Mutex.unlock memo_lock;
  (match entry with
  | Some _ -> Metrics.incr memo_hits
  | None -> Metrics.incr memo_misses);
  entry

let memo_store key entry =
  Mutex.lock memo_lock;
  if Hashtbl.length memo_table >= memo_capacity then Hashtbl.reset memo_table;
  Hashtbl.replace memo_table key entry;
  Mutex.unlock memo_lock

(* The layout key may be raw bytes (see {!Layout.key}), so it is length-
   prefixed to keep the concatenation unambiguous. *)
let memo_key cost ~max_additional_hops ~max_expansions ~lookahead ~next_pairs
    layout obligations =
  let b = Buffer.create 96 in
  Buffer.add_string b (string_of_int (Cost.id cost));
  (match max_additional_hops with
  | None -> Buffer.add_string b "/*"
  | Some mah ->
    Buffer.add_char b '/';
    Buffer.add_string b (string_of_int mah));
  Buffer.add_char b '/';
  Buffer.add_string b (string_of_int max_expansions);
  Buffer.add_char b '/';
  Buffer.add_string b (Int64.to_string (Int64.bits_of_float lookahead));
  Buffer.add_char b '/';
  let layout_key = Layout.key layout in
  Buffer.add_string b (string_of_int (String.length layout_key));
  Buffer.add_char b ':';
  Buffer.add_string b layout_key;
  List.iter
    (fun { operands = oa, ob; bridgeable } ->
      Buffer.add_char b (if bridgeable then 'B' else 'g');
      Buffer.add_string b (string_of_int oa);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int ob))
    obligations;
  Buffer.add_char b '/';
  List.iter
    (fun (oa, ob) ->
      Buffer.add_string b (string_of_int oa);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int ob);
      Buffer.add_char b ';')
    next_pairs;
  Buffer.contents b

let route ?max_additional_hops ?(max_expansions = 100_000)
    ?(lookahead = default_lookahead) ?(bridges = false) ?(memo = true) cost
    layout circuit =
  Span.with_span ~source:"mapper" "mapper.route" @@ fun () ->
  let device = Cost.device cost in
  let ctx = { layout; rev_gates = []; swaps = 0 } in
  let expansions = ref 0 in
  let fallbacks = ref 0 in
  (* Returns true when every obligation of the layer is satisfiable. *)
  let search_layer obligations next_pairs =
    (* runs the A* search, replays its plan into [ctx], and returns the
       memoizable summary of what happened *)
    match
      layer_search cost ~max_additional_hops ~max_expansions ~lookahead
        ~next_pairs ctx.layout obligations
    with
    | Some (states, _, expanded) ->
      expansions := !expansions + expanded;
      let rec replay acc = function
        | a :: (b :: _ as rest) ->
          let acc =
            if Layout.equal a.layout b.layout then acc
            else begin
              match Layout.diff_swap a.layout b.layout with
              | Some (u, v) ->
                emit_swap ctx u v;
                (u, v) :: acc
              | None -> invalid_arg "Router: non-swap A* transition"
            end
          in
          replay acc rest
        | [ _ ] | [] -> List.rev acc
      in
      let swaps = replay [] states in
      { found = true; memo_swaps = swaps; memo_expanded = expanded }
    | None -> { found = false; memo_swaps = []; memo_expanded = 0 }
  in
  let solve_layer obligations next_pairs =
    List.for_all (obligation_satisfied cost ctx.layout) obligations
    ||
    if not memo then (search_layer obligations next_pairs).found
    else begin
      let key =
        memo_key cost ~max_additional_hops ~max_expansions ~lookahead
          ~next_pairs ctx.layout obligations
      in
      match memo_find key with
      | Some { found; memo_swaps; memo_expanded } ->
        (* replaying the recorded swaps reproduces the original search's
           emissions and layout; charging its expansion count keeps the
           stats (and everything derived from them) byte-identical *)
        expansions := !expansions + memo_expanded;
        List.iter (fun (u, v) -> emit_swap ctx u v) memo_swaps;
        found
      | None ->
        let entry = search_layer obligations next_pairs in
        memo_store key entry;
        entry.found
    end
  in
  (* Emit a CNOT: directly when adjacent, else as a bridge through the
     cheapest middle (guaranteed to exist once the layer is solved). *)
  let emit_cnot control target =
    let u = Layout.physical_of_program ctx.layout control in
    let v = Layout.physical_of_program ctx.layout target in
    if Device.connected device u v then
      emit ctx (Gate.Cnot { control = u; target = v })
    else begin
      match bridge_middle cost u v with
      | Some (_, m) ->
        emit ctx (Gate.Cnot { control = u; target = m });
        emit ctx (Gate.Cnot { control = m; target = v });
        emit ctx (Gate.Cnot { control = u; target = m });
        emit ctx (Gate.Cnot { control = m; target = v })
      | None -> invalid_arg "Router: no bridge middle at emission"
    end
  in
  let route_layer layer next_layer =
    let next_pairs =
      match next_layer with
      | Some l -> Layers.two_qubit_pairs l
      | None -> []
    in
    if solve_layer (layer_obligations ~bridges layer) next_pairs then
      List.iter
        (fun gate ->
          match gate with
          | Gate.Cnot { control; target } -> emit_cnot control target
          | Gate.Swap _ | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _
            ->
            emit_relabeled ctx gate)
        layer
    else begin
      (* Expansion cap hit (or MAH budget unreachable): serialize the
         layer — its gates are independent, so satisfying and emitting
         them one at a time along cheapest routes is always sound. *)
      incr fallbacks;
      Log.warn (fun m ->
          m "layer search exhausted (%d gates); serializing the layer"
            (List.length layer));
      let place gate =
        (match gate with
        | Gate.Cnot { control; target } ->
          greedy_satisfy ctx cost (control, target)
        | Gate.Swap (a, b) -> greedy_satisfy ctx cost (a, b)
        | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> ());
        emit_relabeled ctx gate
      in
      List.iter place layer
    end
  in
  let rec walk_layers = function
    | [] -> ()
    | [ last ] -> route_layer last None
    | layer :: (next :: _ as rest) ->
      route_layer layer (Some next);
      walk_layers rest
  in
  walk_layers (Layers.partition circuit);
  let stats =
    {
      swaps_inserted = ctx.swaps;
      astar_expansions = !expansions;
      greedy_fallbacks = !fallbacks;
    }
  in
  record_route ~router:"astar" stats;
  {
    circuit =
      Circuit.of_gates
        ~cbits:(Circuit.num_cbits circuit)
        (Device.num_qubits device)
        (List.rev ctx.rev_gates);
    initial = layout;
    final = ctx.layout;
    stats;
  }

let route_greedy cost layout circuit =
  Span.with_span ~source:"mapper" "mapper.route_greedy" @@ fun () ->
  let device = Cost.device cost in
  let ctx = { layout; rev_gates = []; swaps = 0 } in
  let place gate =
    (match gate with
    | Gate.Cnot { control; target } -> greedy_satisfy ctx cost (control, target)
    | Gate.Swap (a, b) -> greedy_satisfy ctx cost (a, b)
    | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> ());
    emit_relabeled ctx gate
  in
  List.iter place (Circuit.gates circuit);
  let stats =
    { swaps_inserted = ctx.swaps; astar_expansions = 0; greedy_fallbacks = 0 }
  in
  record_route ~router:"greedy" stats;
  {
    circuit =
      Circuit.of_gates
        ~cbits:(Circuit.num_cbits circuit)
        (Device.num_qubits device)
        (List.rev ctx.rev_gates);
    initial = layout;
    final = ctx.layout;
    stats;
  }

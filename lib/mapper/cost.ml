module Device = Vqc_device.Device
module Graph = Vqc_graph.Graph
module Paths = Vqc_graph.Paths

type model = Hops | Reliability

type t = {
  id : int;  (* process-unique stamp; memo tables key on it *)
  model : model;
  device : Device.t;
  cost_graph : Graph.t;  (* weight = cost of one SWAP across the edge *)
  dist : float array array;  (* all-pairs cheapest swap-route cost *)
  adjacency : float array array;
  hop : int array array;
}

(* Stamps are only ever cache keys — the counter is mutex-protected so
   concurrently-compiling domains never mint the same id. *)
let stamp_lock = Mutex.create ()
let next_stamp = ref 0 (* guarded by stamp_lock *)

let fresh_stamp () =
  Mutex.lock stamp_lock;
  let id = !next_stamp in
  incr next_stamp;
  Mutex.unlock stamp_lock;
  id

let execution_cost model device u v =
  match model with
  | Hops -> 0.0
  | Reliability ->
    let p = Float.max 1e-12 (Device.cnot_success device u v) in
    -.log p

let default_swap_bias = 3.2

let make ?(swap_bias = default_swap_bias) device model =
  let cost_graph =
    match model with
    | Hops -> Device.hop_graph device
    | Reliability ->
      (* The bias is relative to the device's mean SWAP cost so that its
         effect is scale-free: when error rates shrink 10x, SWAPs become
         10x cheaper and the router may roam proportionally further for
         good links (paper Table 2's benefit *grows* at lower error
         rates precisely because steering gets cheaper). *)
      let raw = Device.swap_cost_graph device in
      let total = Graph.fold_edges (fun _ _ w acc -> acc +. w) raw 0.0 in
      let mean_swap_cost = total /. float_of_int (max 1 (Graph.edge_count raw)) in
      Graph.map_weights (fun _ _ w -> w +. (swap_bias *. mean_swap_cost)) raw
  in
  let dist = Paths.all_pairs cost_graph in
  let hop = Device.hop_distance device in
  let n = Device.num_qubits device in
  let couplers = Device.coupling device in
  let execution u v = execution_cost model device u v in
  let adjacency = Array.make_matrix n n 0.0 in
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      if p <> q then begin
        let best = ref Float.infinity in
        List.iter
          (fun (a, b) ->
            let route =
              Float.min
                (dist.(p).(a) +. dist.(q).(b))
                (dist.(p).(b) +. dist.(q).(a))
            in
            let via = route +. execution a b in
            if via < !best then best := via)
          couplers;
        adjacency.(p).(q) <- !best
      end
    done
  done;
  { id = fresh_stamp (); model; device; cost_graph; dist; adjacency; hop }

(* ---- construction cache --------------------------------------------

   [make] runs Dijkstra from every node plus an O(n^2 * couplers)
   adjacency sweep; a serving fleet recompiling against the same device
   pays that once per (model, bias) instead of once per compile.  Keyed
   on the *identity* of the device (calibrations are immutable once
   built), most-recently-used first, bounded so epoch churn cannot leak
   old devices.  Sharing one [t] across compiles also shares its [id] —
   which is what lets the router's layer memo hit across policies. *)

let cache_devices = 8
let cache_lock = Mutex.create ()

(* guarded by cache_lock *)
let cache : (Device.t * ((model * float) * t) list ref) list ref = ref []

let cached ?(swap_bias = default_swap_bias) device model =
  Mutex.lock cache_lock;
  let entry =
    match List.find_opt (fun (d, _) -> d == device) !cache with
    | Some (_, models) ->
      cache :=
        (device, models) :: List.filter (fun (d, _) -> d != device) !cache;
      models
    | None ->
      let models = ref [] in
      let keep, _ =
        List.fold_left
          (fun (keep, n) slot ->
            if n < cache_devices - 1 then (slot :: keep, n + 1) else (keep, n))
          ([], 0) !cache
      in
      cache := (device, models) :: List.rev keep;
      models
  in
  let found = List.assoc_opt (model, swap_bias) !entry in
  Mutex.unlock cache_lock;
  match found with
  | Some t -> t
  | None ->
    (* build outside the lock: construction is the expensive part and
       [make] is pure.  A concurrent miss may build twice; last write
       wins and both results are equivalent. *)
    let t = make ~swap_bias device model in
    Mutex.lock cache_lock;
    (if not (List.mem_assoc (model, swap_bias) !entry) then
       entry := ((model, swap_bias), t) :: !entry);
    let t =
      match List.assoc_opt (model, swap_bias) !entry with
      | Some t -> t
      | None -> t
    in
    Mutex.unlock cache_lock;
    t

let id t = t.id
let model t = t.model
let device t = t.device

let swap_cost t u v =
  match Graph.edge_weight t.cost_graph u v with
  | Some w -> w
  | None ->
    invalid_arg (Printf.sprintf "Cost.swap_cost: %d--%d not coupled" u v)

let cnot_cost t u v =
  if not (Device.connected t.device u v) then
    invalid_arg (Printf.sprintf "Cost.cnot_cost: %d--%d not coupled" u v);
  execution_cost t.model t.device u v

let distance t p q = t.dist.(p).(q)
let entangle_cost t p q = t.adjacency.(p).(q)
let hops_to_adjacency t p q = max 0 (t.hop.(p).(q) - 1)

let window_sums t pairs =
  let n = Array.length t.dist in
  let touched = Array.make n 0.0 in
  let total = ref 0.0 in
  List.iter
    (fun (u, v) ->
      let d = t.dist.(u).(v) in
      total := !total +. d;
      touched.(u) <- touched.(u) +. d;
      if v <> u then touched.(v) <- touched.(v) +. d)
    pairs;
  (!total, touched)

let route t p q =
  match Paths.shortest_path t.cost_graph p q with
  | Some path -> path
  | None -> invalid_arg (Printf.sprintf "Cost.route: %d and %d disconnected" p q)

type t = {
  phys_of_prog : int array;  (* program qubit -> physical qubit *)
  prog_of_phys : int array;  (* physical qubit -> program qubit or -1 *)
}

let invariant_violation fmt = Printf.ksprintf invalid_arg fmt

let of_assignment ~physicals phys_of_prog =
  let programs = Array.length phys_of_prog in
  if programs > physicals then
    invariant_violation "Layout: %d program qubits on %d physical" programs
      physicals;
  let prog_of_phys = Array.make physicals (-1) in
  Array.iteri
    (fun prog phys ->
      if phys < 0 || phys >= physicals then
        invariant_violation "Layout: physical qubit %d out of range" phys;
      if prog_of_phys.(phys) <> -1 then
        invariant_violation "Layout: physical qubit %d assigned twice" phys;
      prog_of_phys.(phys) <- prog)
    phys_of_prog;
  { phys_of_prog = Array.copy phys_of_prog; prog_of_phys }

let identity ~programs ~physicals =
  if programs < 0 then invariant_violation "Layout: negative program count";
  of_assignment ~physicals (Array.init programs Fun.id)

let programs l = Array.length l.phys_of_prog
let physicals l = Array.length l.prog_of_phys

let physical_of_program l prog =
  if prog < 0 || prog >= programs l then
    invariant_violation "Layout: program qubit %d out of range" prog;
  l.phys_of_prog.(prog)

let program_of_physical l phys =
  if phys < 0 || phys >= physicals l then
    invariant_violation "Layout: physical qubit %d out of range" phys;
  match l.prog_of_phys.(phys) with -1 -> None | prog -> Some prog

let occupied l phys = program_of_physical l phys <> None

let swap_physical l u v =
  if u = v then invariant_violation "Layout.swap_physical: identical qubits";
  let pu = program_of_physical l u and pv = program_of_physical l v in
  let phys_of_prog = Array.copy l.phys_of_prog in
  let prog_of_phys = Array.copy l.prog_of_phys in
  prog_of_phys.(u) <- (match pv with None -> -1 | Some p -> p);
  prog_of_phys.(v) <- (match pu with None -> -1 | Some p -> p);
  (match pu with None -> () | Some p -> phys_of_prog.(p) <- v);
  (match pv with None -> () | Some p -> phys_of_prog.(p) <- u);
  { phys_of_prog; prog_of_phys }

let assignment l = Array.copy l.phys_of_prog

let used_physicals l = List.sort compare (Array.to_list l.phys_of_prog)

(* One byte per program qubit: the assignment is injective into
   [0, physicals), so for devices under 256 qubits the packed bytes are a
   canonical key (and far cheaper to build and hash than decimal text —
   this runs once per generated A* successor).  Larger devices fall back
   to the textual encoding. *)
let key l =
  let programs = Array.length l.phys_of_prog in
  if Array.length l.prog_of_phys < 256 then begin
    let bytes = Bytes.create programs in
    for prog = 0 to programs - 1 do
      Bytes.unsafe_set bytes prog
        (Char.unsafe_chr (Array.unsafe_get l.phys_of_prog prog))
    done;
    Bytes.unsafe_to_string bytes
  end
  else begin
    let buffer = Buffer.create (2 * programs) in
    Array.iter
      (fun phys ->
        Buffer.add_string buffer (string_of_int phys);
        Buffer.add_char buffer ',')
      l.phys_of_prog;
    Buffer.contents buffer
  end

let diff_swap a b =
  if physicals a <> physicals b || programs a <> programs b then None
  else begin
    let changed = ref [] in
    Array.iteri
      (fun phys prog -> if b.prog_of_phys.(phys) <> prog then changed := phys :: !changed)
      a.prog_of_phys;
    match !changed with
    | [ u; v ] ->
      let swapped = swap_physical a u v in
      if swapped.phys_of_prog = b.phys_of_prog then Some (min u v, max u v)
      else None
    | _ -> None
  end

let equal a b = a.phys_of_prog = b.phys_of_prog

let pp ppf l =
  Format.fprintf ppf "@[<h>{";
  Array.iteri
    (fun prog phys ->
      if prog > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "q%d->%d" prog phys)
    l.phys_of_prog;
  Format.fprintf ppf "}@]"

(** SABRE-style routing (Li, Ding & Xie, ASPLOS 2019) — the lookahead
    swap heuristic that modern compilers (Qiskit's SabreSwap lineage)
    ship, implemented here as an independent comparison point for the
    paper's layered A* policies.  With a reliability distance matrix it
    becomes a noise-adaptive SABRE, i.e. roughly what followed this
    paper's ideas into production toolchains.

    The algorithm maintains the DAG's {e front layer} (gates whose
    predecessors have all executed).  Executable gates are flushed; when
    the front layer is stuck, the SWAP minimizing

    [ H = (1/|F|) sum_F d(gate) + w * (1/|E|) sum_E d(gate) ]

    is applied, where [F] is the front layer, [E] a bounded set of
    lookahead successors and [d] the distance between a gate's mapped
    operands under the {!Cost.t} model; per-qubit decay factors break
    ping-pong cycles. *)

open Vqc_circuit

val route :
  ?lookahead_size:int ->
  ?lookahead_weight:float ->
  ?decay:float ->
  ?prune:bool ->
  Cost.t ->
  Layout.t ->
  Circuit.t ->
  Router.result
(** Route a program with SABRE.  [lookahead_size] bounds [E] (default
    20), [lookahead_weight] is [w] (default 0.5), [decay] the per-use
    qubit decay increment (default 0.001).

    [prune] (default true) lower-bounds each candidate swap's score from
    the window sums ({!Cost.window_sums}) and skips candidates whose
    bound clears the running best by a margin; candidates inside the
    margin are evaluated in full, so the selected swaps — and the gate
    stream — are identical to an unpruned run ([prune:false] exists for
    the differential tests, not for different results).
    @raise Invalid_argument if the circuit is wider than the layout. *)

(** End-to-end compilation: allocation followed by routing.

    The presets are the paper's policy matrix:
    - {!baseline}: Zulehner-style locality allocation + SWAP-minimizing
      A* routing (variation unaware, Section 4.5);
    - {!vqm}: same allocation, reliability-cost routing (Section 5);
    - {!vqm_limited}: VQM with the Maximum-Additional-Hops budget;
    - {!vqa_vqm}: variation-aware allocation and routing (Section 6);
    - {!native}: randomized allocation + naive per-gate routing, the
      IBM-native-compiler stand-in of Section 6.4. *)

open Vqc_circuit

type routing =
  | Astar_route of {
      cost_model : Cost.model;
      max_additional_hops : int option;
      bridges : bool;  (** allow bridged CNOT execution (see {!Router.route}) *)
    }
  | Greedy_route of Cost.model
  | Sabre_route of Cost.model
      (** SABRE-style lookahead routing ({!Sabre.route}) — the modern
          comparison point; with [Cost.Reliability] it is a noise-adaptive
          SABRE. *)

type policy = {
  label : string;
  allocations : Allocation.policy list;
      (** candidate initial mappings *)
  routings : routing list;
      (** candidate routing strategies.

          The compiler compiles every allocation x routing combination
          and keeps the plan with the highest estimated gate reliability
          ({!log_gate_reliability}).  This candidate selection is itself
          part of being variation-aware: reliability-greedy routing can
          lose to the plain SWAP-minimizing plan when the weak-link field
          is dense (its detours displace bystander qubits and later
          layers pay), and the compiler can see that from its own
          estimates before anything runs — the paper's runtime model
          (footnote 2: recompile at every calibration) does exactly this
          kind of plan selection.  With a single allocation and routing
          the policy degenerates to a fixed pipeline (the baseline). *)
}

val baseline : policy
val vqm : policy
val vqm_limited : int -> policy
val vqa_vqm : policy
val vqa_vqm_limited : int -> policy
val native : seed:int -> policy

val vqa_vqm_readout : policy
(** Extension beyond the paper: VQA+VQM with the readout-aware placement
    candidate ({!Allocation.vqa_readout}) added to the plan pool — the
    paper's VQA optimizes two-qubit links only and can silently trade
    measurement fidelity away. *)

val vqm_bridge : policy
(** Extension beyond the paper: VQM with bridged CNOT execution allowed
    (and the bridge-free reliability and hop plans as fallback
    candidates). *)

val sabre : policy
(** Extension beyond the paper: locality allocation + SABRE hop routing
    (variation unaware). *)

val noise_sabre : policy
(** Extension beyond the paper: VQA allocation + reliability-weighted
    SABRE — approximately the pipeline that descended from this paper
    into production compilers. *)

type compiled = {
  policy : policy;
  physical : Circuit.t;  (** routed circuit on the device's qubits *)
  initial : Layout.t;
  final : Layout.t;
  stats : Router.stats;
}

val compile :
  ?max_expansions:int ->
  ?memo:bool ->
  Vqc_device.Device.t ->
  policy ->
  Circuit.t ->
  compiled
(** @raise Invalid_argument if the program is wider than the device.
    When a plan check is installed ({!set_plan_check}), it runs on the
    winning candidate before [compile] returns and may raise.

    [memo] (default true) selects the fast pipeline: shared cost tables
    ({!Cost.cached}), layer-search memoization ({!Router.route}'s [memo])
    and SABRE candidate pruning.  [memo:false] recomputes everything from
    scratch — the reference pipeline the differential tests and the
    kernel benchmarks compare against.  Both produce byte-identical
    plans. *)

val set_plan_check :
  (Vqc_device.Device.t -> Circuit.t -> compiled -> unit) -> unit
(** Install a post-compile hook called as [check device source plan] on
    every plan {!compile} emits.  The checker may raise to reject the
    plan ([Vqc_check.Verify.install_compiler_check] installs the
    translation validator this way — the verifier sits above this
    library, so it reaches the pipeline through inversion of control).
    At most one hook is installed; a second call replaces the first. *)

val clear_plan_check : unit -> unit

val swap_overhead : compiled -> int
(** SWAPs inserted by routing (program SWAPs excluded). *)

val log_gate_reliability : Vqc_device.Device.t -> Circuit.t -> float
(** Sum of [log p_success] over the gates of a physical circuit — the
    compiler's internal yardstick for comparing candidate mappings
    (coherence excluded; higher is better). *)

(** SWAP-insertion routing (paper Sections 4.5 step 5 and 5.3 step 5).

    [route] is the layered A* scheme of Zulehner et al.: for each layer
    whose two-qubit gates are not all executable under the current layout,
    search for the cheapest SWAP sequence (by the given {!Cost.t} model)
    that makes the whole layer executable.  With [Cost.Hops] this is the
    variation-unaware baseline; with [Cost.Reliability] it is VQM.  The
    optional [max_additional_hops] budget is the paper's MAH knob: the
    layer may use at most [baseline minimum + MAH] SWAPs.

    [route_greedy] is the naive per-gate router used to model the IBM
    native compiler: each unexecutable CNOT drags its control along a
    shortest route until adjacent, with no lookahead. *)

open Vqc_circuit

type stats = {
  swaps_inserted : int;
  astar_expansions : int;
  greedy_fallbacks : int;
      (** layers solved greedily after the A* expansion cap *)
}

type result = {
  circuit : Circuit.t;
      (** physical circuit over the device's qubits, SWAPs included *)
  initial : Layout.t;
  final : Layout.t;
  stats : stats;
}

val default_lookahead : float
(** Weight of the next layer's entangle cost in each layer's objective
    (0.5) — per-layer optimization with no lookahead strands qubits in
    positions that cost following layers dearly. *)

val route :
  ?max_additional_hops:int ->
  ?max_expansions:int ->
  ?lookahead:float ->
  ?bridges:bool ->
  ?memo:bool ->
  Cost.t ->
  Layout.t ->
  Circuit.t ->
  result
(** Route a program circuit from an initial layout.  [max_expansions]
    (default 100_000) caps each layer's A* before the layer is serialized
    and routed gate-by-gate.

    [bridges] (default false) extends the execute step beyond the paper:
    a CNOT whose operands sit at hop distance 2 may execute as a bridge —
    [cx a b; cx b c; cx a b; cx b c] through a middle qubit [b] — paying
    four CNOTs but displacing nobody, where a SWAP-then-CNOT pays the
    same four CNOTs and scrambles the layout for later layers.  The
    search weighs both options by reliability.  Program SWAP gates still
    require adjacency.

    [memo] (default true) replays layer searches from a process-wide
    memo instead of re-running A* when an identical subproblem — same
    cost table (by {!Cost.id}), layout, obligations, lookahead pairs and
    search parameters — was already solved.  A replay emits the same
    swaps and charges the same [astar_expansions], so results are
    byte-identical with the memo on or off ([memo:false] exists for the
    differential tests and benchmarks, not for different results). *)

val memo_clear : unit -> unit
(** Drop every memoized layer search (a fresh-process state for
    benchmarks; never needed for correctness). *)

val route_greedy : Cost.t -> Layout.t -> Circuit.t -> result

val record_route : router:string -> stats -> unit
(** Feed one finished routing pass into the {!Vqc_obs} registry
    ([mapper.routes], [mapper.swaps_inserted], [mapper.astar_expansions],
    [mapper.greedy_fallbacks]) and, when a trace sink is attached, emit a
    [source = "mapper"] / [event = "route"] event tagged with [router]
    ("astar", "greedy", "sabre").  Called by every router in this
    library; exposed so external routers can report through the same
    channel.  Purely observational — never affects routing results. *)

val executable : Cost.t -> Layout.t -> (int * int) list -> bool
(** Whether every (program) pair is mapped to coupled physical qubits. *)

open Vqc_circuit
module Device = Vqc_device.Device
module Calibration = Vqc_device.Calibration

let log_src = Logs.Src.create "vqc.compiler" ~doc:"compilation pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Metrics = Vqc_obs.Metrics
module Trace = Vqc_obs.Trace
module Span = Vqc_obs.Span
module Json = Vqc_obs.Json

let compiles_total = Metrics.counter "mapper.compiles"
let candidates_total = Metrics.counter "mapper.candidates"

type routing =
  | Astar_route of {
      cost_model : Cost.model;
      max_additional_hops : int option;
      bridges : bool;
    }
  | Greedy_route of Cost.model
  | Sabre_route of Cost.model

type policy = {
  label : string;
  allocations : Allocation.policy list;
  routings : routing list;
}

let hop_route =
  Astar_route
    { cost_model = Cost.Hops; max_additional_hops = None; bridges = false }

let reliability_route mah =
  Astar_route
    { cost_model = Cost.Reliability; max_additional_hops = mah; bridges = false }

let bridge_route =
  Astar_route
    { cost_model = Cost.Reliability; max_additional_hops = None; bridges = true }

let baseline =
  {
    label = "baseline";
    allocations = [ Allocation.Locality ];
    routings = [ hop_route ];
  }

let vqm =
  {
    label = "vqm";
    allocations = [ Allocation.Locality ];
    routings = [ reliability_route None; hop_route ];
  }

let vqm_limited mah =
  {
    label = Printf.sprintf "vqm-mah%d" mah;
    allocations = [ Allocation.Locality ];
    routings = [ reliability_route (Some mah); hop_route ];
  }

let vqa_vqm =
  {
    label = "vqa+vqm";
    allocations = [ Allocation.vqa; Allocation.Locality ];
    routings = [ reliability_route None; hop_route ];
  }

let vqa_vqm_limited mah =
  {
    label = Printf.sprintf "vqa+vqm-mah%d" mah;
    allocations = [ Allocation.vqa; Allocation.Locality ];
    routings = [ reliability_route (Some mah); hop_route ];
  }

let vqa_vqm_readout =
  {
    label = "vqa+vqm+readout";
    allocations = [ Allocation.vqa_readout; Allocation.vqa; Allocation.Locality ];
    routings = [ reliability_route None; hop_route ];
  }

let vqm_bridge =
  {
    label = "vqm+bridge";
    allocations = [ Allocation.Locality ];
    routings = [ bridge_route; reliability_route None; hop_route ];
  }

let sabre =
  {
    label = "sabre";
    allocations = [ Allocation.Locality ];
    routings = [ Sabre_route Cost.Hops ];
  }

let noise_sabre =
  {
    label = "noise-sabre";
    allocations = [ Allocation.vqa; Allocation.Locality ];
    routings = [ Sabre_route Cost.Reliability; Sabre_route Cost.Hops ];
  }

let native ~seed =
  {
    label = Printf.sprintf "ibm-native-%d" seed;
    allocations = [ Allocation.Random seed ];
    routings = [ Greedy_route Cost.Hops ];
  }

type compiled = {
  policy : policy;
  physical : Circuit.t;
  initial : Layout.t;
  final : Layout.t;
  stats : Router.stats;
}

(* Post-compile hook: translation validation lives above this library
   (Vqc_check depends on the mapper), so the verifier reaches the
   pipeline through inversion of control.  The hook sees every emitted
   plan and may raise to reject it. *)
(* domain-safe: installed/cleared only before worker domains fan out *)
let plan_check : (Device.t -> Circuit.t -> compiled -> unit) option ref =
  ref None

let set_plan_check f = plan_check := Some f
let clear_plan_check () = plan_check := None

let log_gate_reliability device circuit =
  let calibration = Device.calibration device in
  let log_success p = log (Float.max 1e-12 p) in
  List.fold_left
    (fun acc gate ->
      match gate with
      | Gate.One_qubit (_, q) ->
        acc
        +. log_success (1.0 -. (Calibration.qubit calibration q).Calibration.error_1q)
      | Gate.Cnot { control; target } ->
        acc +. log_success (Device.cnot_success device control target)
      | Gate.Swap (a, b) -> acc +. log_success (Device.swap_success device a b)
      | Gate.Measure { qubit; _ } ->
        acc
        +. log_success
             (1.0 -. (Calibration.qubit calibration qubit).Calibration.error_readout)
      | Gate.Barrier _ -> acc)
    0.0 (Circuit.gates circuit)

let compile ?max_expansions ?(memo = true) device policy circuit =
  if policy.allocations = [] then
    invalid_arg "Compiler.compile: policy has no allocation";
  if policy.routings = [] then
    invalid_arg "Compiler.compile: policy has no routing";
  Span.with_span ~source:"mapper" "mapper.compile"
    ~fields:[ ("policy", Json.String policy.label) ]
  @@ fun () ->
  (* [memo:false] is the reference pipeline for differential tests and
     benchmarks: fresh cost tables, no layer memo, no candidate pruning.
     Both pipelines produce byte-identical plans. *)
  let cost_for model = if memo then Cost.cached device model else Cost.make device model in
  let route_with layout routing =
    match routing with
    | Astar_route { cost_model; max_additional_hops; bridges } ->
      Router.route ?max_additional_hops ?max_expansions ~bridges ~memo
        (cost_for cost_model) layout circuit
    | Greedy_route cost_model -> Router.route_greedy (cost_for cost_model) layout circuit
    | Sabre_route cost_model ->
      Sabre.route ~prune:memo (cost_for cost_model) layout circuit
  in
  let routing_label = function
    | Astar_route { cost_model = Cost.Hops; _ } -> "astar-hops"
    | Astar_route { cost_model = Cost.Reliability; bridges = true; _ } ->
      "astar-reliability+bridges"
    | Astar_route { cost_model = Cost.Reliability; _ } -> "astar-reliability"
    | Greedy_route _ -> "greedy"
    | Sabre_route Cost.Hops -> "sabre-hops"
    | Sabre_route Cost.Reliability -> "sabre-reliability"
  in
  let candidates =
    List.concat_map
      (fun allocation ->
        let layout = Allocation.allocate device circuit allocation in
        List.map
          (fun routing -> (allocation, routing, route_with layout routing))
          policy.routings)
      policy.allocations
  in
  let score (_, _, routed) = log_gate_reliability device routed.Router.circuit in
  let describe (allocation, routing, routed) =
    Printf.sprintf "%s/%s (%d swaps)"
      (Allocation.policy_name allocation)
      (routing_label routing)
      routed.Router.stats.Router.swaps_inserted
  in
  let best =
    match candidates with
    | first :: rest ->
      List.fold_left
        (fun champion candidate ->
          Log.debug (fun m ->
              m "%s: candidate %s log-reliability %.3f" policy.label
                (describe candidate) (score candidate));
          if score candidate > score champion then candidate else champion)
        first rest
    | [] -> assert false
  in
  Log.info (fun m ->
      m "%s: chose %s, log-reliability %.3f" policy.label (describe best)
        (score best));
  Metrics.incr compiles_total;
  Metrics.add candidates_total (List.length candidates);
  if Trace.enabled () then begin
    let chosen_allocation, chosen_routing, chosen = best in
    Trace.emit ~source:"mapper" ~event:"compile"
      [
        ("policy", Json.String policy.label);
        ("candidates", Json.Int (List.length candidates));
        ("allocation", Json.String (Allocation.policy_name chosen_allocation));
        ("routing", Json.String (routing_label chosen_routing));
        ("swaps_inserted", Json.Int chosen.Router.stats.Router.swaps_inserted);
      ]
  end;
  let _, _, best = best in
  let result =
    {
      policy;
      physical = best.Router.circuit;
      initial = best.Router.initial;
      final = best.Router.final;
      stats = best.Router.stats;
    }
  in
  (match !plan_check with
  | Some f -> f device circuit result
  | None -> ());
  result

let swap_overhead compiled = compiled.stats.Router.swaps_inserted

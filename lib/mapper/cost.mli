(** Cost models for SWAP insertion.

    The baseline (paper Section 4.5) charges every SWAP the same unit
    cost, so minimizing cost minimizes SWAP count.  VQM (Section 5.3)
    charges a SWAP across link [u -- v] its negated log-reliability
    [-3 log(1 - e_uv)], so minimizing cost maximizes the product of
    success probabilities. *)

type model =
  | Hops  (** variation-unaware: every SWAP costs 1 *)
  | Reliability  (** variation-aware: a SWAP costs its [-log] success *)

type t

val default_swap_bias : float
(** Extra cost added to every SWAP under the [Reliability] model,
    expressed as a multiple of the device's mean SWAP log-cost (3.2).
    A longer route's SWAPs displace bystander qubits and future layers
    pay to undo it — a cost the per-layer objective cannot see (the paper
    adds the MAH hop budget for exactly this reason, Section 5.3).  The
    bias is a soft version: a reliability detour must save more than the
    bias per extra SWAP before it is taken, which keeps VQM's SWAP counts
    near the baseline's (the locality-preserving behaviour the paper
    describes).  Being relative keeps the policy scale-free: at 10x lower
    error rates SWAPs are 10x cheaper and steering proportionally freer
    (why paper Table 2's benefit grows as errors shrink).  [Hops] is
    unaffected (its unit cost already counts SWAPs). *)

val make : ?swap_bias:float -> Vqc_device.Device.t -> model -> t
(** Precompute the distance and adjacency-cost matrices for a device.
    [swap_bias] applies to the [Reliability] model only. *)

val cached : ?swap_bias:float -> Vqc_device.Device.t -> model -> t
(** [make] with a small process-wide cache keyed on the device's
    physical identity and [(model, swap_bias)]: repeated compiles
    against the same device share one precomputed table (and hence one
    {!id}, which lets downstream memo tables hit across policies).
    Thread-safe; bounded (least-recently-used devices are evicted). *)

val id : t -> int
(** Process-unique stamp, stable for the lifetime of this value.  Two
    [t]s built by separate {!make} calls never share an id even with
    equal parameters — suitable as a memo key component. *)

val model : t -> model
val device : t -> Vqc_device.Device.t

val swap_cost : t -> int -> int -> float
(** Cost of one SWAP across a coupler.
    @raise Invalid_argument if the qubits are not coupled. *)

val cnot_cost : t -> int -> int -> float
(** Cost of executing one CNOT across a coupler: 0 under [Hops] (the
    baseline executes the same CNOTs regardless of placement, so they
    don't influence its SWAP minimization) and [-log(1 - e)] under
    [Reliability] — the execution link matters as much as the route.
    @raise Invalid_argument if the qubits are not coupled. *)

val distance : t -> int -> int -> float
(** Cheapest SWAP-route cost between two physical qubits (0 when equal). *)

val entangle_cost : t -> int -> int -> float
(** Minimum total cost to entangle two physical qubits: the min over
    couplers [(a, b)] of [distance p a + distance q b + cnot_cost a b]
    in either orientation — the paper's matrix D (Algorithm 1 step 1)
    and the per-gate term of the A* heuristic. *)

val hops_to_adjacency : t -> int -> int -> int
(** Baseline SWAP count to make a pair adjacent ([hop distance - 1],
    0 when adjacent) — the reference for the MAH budget. *)

val window_sums : t -> (int * int) list -> float * float array
(** [window_sums t pairs] sums {!distance} over a window of physical
    pairs: the total, plus per physical qubit the summed distance of the
    pairs touching it.  Swapping qubits [u] and [v] can only change the
    distance of pairs touching them, and distances are non-negative, so
    [total - touched.(u) - touched.(v)] lower-bounds the window's
    post-swap sum (gates touching both are subtracted twice — still a
    valid bound) — the lookahead-window bound SABRE's candidate pruning
    is built on. *)

val route : t -> int -> int -> int list
(** Cheapest swap-route between two physical qubits as a node path
    (inclusive of both endpoints).  Under [Hops] this is some shortest
    path; under [Reliability] the most reliable one.
    @raise Invalid_argument if unreachable (devices are connected). *)

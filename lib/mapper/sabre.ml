open Vqc_circuit
module Device = Vqc_device.Device

(* Gates whose operands are routable obstacles: 2q gates only; everything
   else executes unconditionally once its predecessors ran. *)
let blocking gate =
  match gate with
  | Gate.Cnot _ | Gate.Swap _ -> true
  | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> false

let route ?(lookahead_size = 20) ?(lookahead_weight = 0.5) ?(decay = 0.001)
    cost layout circuit =
  Vqc_obs.Span.with_span ~source:"mapper" "mapper.sabre" @@ fun () ->
  let device = Cost.device cost in
  let dag = Dag.build circuit in
  let count = Dag.gate_count dag in
  let gate_at = Dag.gate dag in
  let predecessors_left =
    Array.init count (Dag.predecessor_count dag)
  in
  let ctx = ref layout in
  let output = ref [] in
  let swaps = ref 0 in
  let emit gate = output := gate :: !output in
  let physical prog = Layout.physical_of_program !ctx prog in
  let executable gate =
    match gate with
    | Gate.Cnot { control; target } ->
      Device.connected device (physical control) (physical target)
    | Gate.Swap (a, b) -> Device.connected device (physical a) (physical b)
    | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> true
  in
  (* front layer as a mutable set of gate indices *)
  let front = Hashtbl.create 16 in
  Array.iteri
    (fun i left -> if left = 0 then Hashtbl.replace front i ())
    predecessors_left;
  let complete index =
    Hashtbl.remove front index;
    List.iter
      (fun s ->
        predecessors_left.(s) <- predecessors_left.(s) - 1;
        if predecessors_left.(s) = 0 then Hashtbl.replace front s ())
      (Dag.successors dag index)
  in
  let executed = ref 0 in
  let decay_factor = Array.make (Layout.physicals layout) 1.0 in
  let decay_reset_period = 5 in
  let since_reset = ref 0 in
  (* flush every currently executable front gate (in index order for
     determinism) to a fixpoint *)
  let rec flush () =
    let ready =
      Hashtbl.fold (fun i () acc -> i :: acc) front []
      |> List.sort compare
      |> List.filter (fun i -> executable (gate_at i))
    in
    if ready <> [] then begin
      List.iter
        (fun i ->
          emit (Gate.relabel physical (gate_at i));
          incr executed;
          complete i)
        ready;
      flush ()
    end
  in
  let front_two_qubit () =
    Hashtbl.fold
      (fun i () acc -> if blocking (gate_at i) then i :: acc else acc)
      front []
    |> List.sort compare
  in
  (* bounded successor set for the lookahead term *)
  let extended_set stuck =
    let seen = Hashtbl.create 32 in
    let queue = Queue.create () in
    List.iter (fun i -> Queue.add i queue) stuck;
    let result = ref [] in
    let budget = ref lookahead_size in
    while !budget > 0 && not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      List.iter
        (fun s ->
          if not (Hashtbl.mem seen s) then begin
            Hashtbl.replace seen s ();
            if blocking (gate_at s) && !budget > 0 then begin
              result := s :: !result;
              decr budget
            end;
            Queue.add s queue
          end)
        (Dag.successors dag i)
    done;
    !result
  in
  let gate_distance l index =
    match (gate_at index) with
    | Gate.Cnot { control; target } ->
      Cost.distance cost
        (Layout.physical_of_program l control)
        (Layout.physical_of_program l target)
    | Gate.Swap (a, b) ->
      Cost.distance cost
        (Layout.physical_of_program l a)
        (Layout.physical_of_program l b)
    | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> 0.0
  in
  let heuristic l stuck extended =
    let mean indices =
      match indices with
      | [] -> 0.0
      | _ ->
        List.fold_left (fun acc i -> acc +. gate_distance l i) 0.0 indices
        /. float_of_int (List.length indices)
    in
    mean stuck +. (lookahead_weight *. mean extended)
  in
  let candidate_swaps stuck =
    let active = Hashtbl.create 16 in
    List.iter
      (fun i ->
        List.iter
          (fun q -> Hashtbl.replace active (physical q) ())
          (Gate.qubits (gate_at i)))
      stuck;
    List.filter
      (fun (u, v) -> Hashtbl.mem active u || Hashtbl.mem active v)
      (Device.coupling device)
  in
  let steps_bound = (count * 32) + 1024 in
  let steps = ref 0 in
  while !executed < count do
    incr steps;
    if !steps > steps_bound then
      invalid_arg "Sabre.route: routing failed to make progress";
    flush ();
    if !executed < count then begin
      let stuck = front_two_qubit () in
      if stuck = [] then
        (* only possible transiently; flush will make progress *)
        ()
      else begin
        let extended = extended_set stuck in
        let best = ref None in
        List.iter
          (fun (u, v) ->
            let trial = Layout.swap_physical !ctx u v in
            let score =
              heuristic trial stuck extended
              *. decay_factor.(u) *. decay_factor.(v)
              (* the swap itself costs reliability under the noise-aware
                 model: fold it in so weak links are avoided *)
              +. (Cost.swap_cost cost u v /. 100.0)
            in
            match !best with
            | Some (best_score, _, _) when best_score <= score -> ()
            | _ -> best := Some (score, u, v))
          (candidate_swaps stuck);
        match !best with
        | None -> invalid_arg "Sabre.route: no candidate swap"
        | Some (_, u, v) ->
          emit (Gate.Swap (u, v));
          incr swaps;
          ctx := Layout.swap_physical !ctx u v;
          decay_factor.(u) <- decay_factor.(u) +. decay;
          decay_factor.(v) <- decay_factor.(v) +. decay;
          incr since_reset;
          if !since_reset >= decay_reset_period then begin
            Array.fill decay_factor 0 (Array.length decay_factor) 1.0;
            since_reset := 0
          end
      end
    end
  done;
  let stats =
    { Router.swaps_inserted = !swaps; astar_expansions = 0; greedy_fallbacks = 0 }
  in
  Router.record_route ~router:"sabre" stats;
  {
    Router.circuit =
      Circuit.of_gates
        ~cbits:(Circuit.num_cbits circuit)
        (Device.num_qubits device)
        (List.rev !output);
    initial = layout;
    final = !ctx;
    stats;
  }

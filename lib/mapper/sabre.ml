open Vqc_circuit
module Device = Vqc_device.Device

(* Gates whose operands are routable obstacles: 2q gates only; everything
   else executes unconditionally once its predecessors ran. *)
let blocking gate =
  match gate with
  | Gate.Cnot _ | Gate.Swap _ -> true
  | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> false

let route ?(lookahead_size = 20) ?(lookahead_weight = 0.5) ?(decay = 0.001)
    ?(prune = true) cost layout circuit =
  Vqc_obs.Span.with_span ~source:"mapper" "mapper.sabre" @@ fun () ->
  let device = Cost.device cost in
  let dag = Dag.build circuit in
  let count = Dag.gate_count dag in
  let gate_at = Dag.gate dag in
  let predecessors_left =
    Array.init count (Dag.predecessor_count dag)
  in
  let ctx = ref layout in
  let output = ref [] in
  let swaps = ref 0 in
  let emit gate = output := gate :: !output in
  let physical prog = Layout.physical_of_program !ctx prog in
  let executable gate =
    match gate with
    | Gate.Cnot { control; target } ->
      Device.connected device (physical control) (physical target)
    | Gate.Swap (a, b) -> Device.connected device (physical a) (physical b)
    | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ -> true
  in
  (* front layer as a mutable set of gate indices *)
  let front = Hashtbl.create 16 in
  Array.iteri
    (fun i left -> if left = 0 then Hashtbl.replace front i ())
    predecessors_left;
  let complete index =
    Hashtbl.remove front index;
    List.iter
      (fun s ->
        predecessors_left.(s) <- predecessors_left.(s) - 1;
        if predecessors_left.(s) = 0 then Hashtbl.replace front s ())
      (Dag.successors dag index)
  in
  let executed = ref 0 in
  let decay_factor = Array.make (Layout.physicals layout) 1.0 in
  let decay_reset_period = 5 in
  let since_reset = ref 0 in
  (* flush every currently executable front gate (in index order for
     determinism) to a fixpoint *)
  let rec flush () =
    let ready =
      Hashtbl.fold (fun i () acc -> i :: acc) front []
      |> List.sort compare
      |> List.filter (fun i -> executable (gate_at i))
    in
    if ready <> [] then begin
      List.iter
        (fun i ->
          emit (Gate.relabel physical (gate_at i));
          incr executed;
          complete i)
        ready;
      flush ()
    end
  in
  let front_two_qubit () =
    Hashtbl.fold
      (fun i () acc -> if blocking (gate_at i) then i :: acc else acc)
      front []
    |> List.sort compare
  in
  (* bounded successor set for the lookahead term *)
  let extended_set stuck =
    let seen = Hashtbl.create 32 in
    let queue = Queue.create () in
    List.iter (fun i -> Queue.add i queue) stuck;
    let result = ref [] in
    let budget = ref lookahead_size in
    while !budget > 0 && not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      List.iter
        (fun s ->
          if not (Hashtbl.mem seen s) then begin
            Hashtbl.replace seen s ();
            if blocking (gate_at s) && !budget > 0 then begin
              result := s :: !result;
              decr budget
            end;
            Queue.add s queue
          end)
        (Dag.successors dag i)
    done;
    !result
  in
  (* Candidate evaluation works on the gates' *physical* pairs under the
     current layout: applying candidate swap (u, v) just substitutes
     u <-> v in each pair, so no trial layout is materialized.  The fold
     below runs the exact float operations (same values, same order) as
     scoring a [Layout.swap_physical] copy did, so scores — and hence the
     chosen swaps and the emitted gate stream — are bit-identical. *)
  let physical_pairs indices =
    List.map
      (fun i ->
        match gate_at i with
        | Gate.Cnot { control; target } -> (physical control, physical target)
        | Gate.Swap (a, b) -> (physical a, physical b)
        | Gate.One_qubit _ | Gate.Measure _ | Gate.Barrier _ ->
          assert false (* stuck/extended contain blocking gates only *))
      indices
  in
  let heuristic_swapped ~stuck_pairs ~stuck_count ~ext_pairs ~ext_count u v =
    let substitute p = if p = u then v else if p = v then u else p in
    let mean pairs count =
      match count with
      | 0 -> 0.0
      | _ ->
        List.fold_left
          (fun acc (pa, pb) ->
            acc +. Cost.distance cost (substitute pa) (substitute pb))
          0.0 pairs
        /. float_of_int count
    in
    mean stuck_pairs stuck_count +. (lookahead_weight *. mean ext_pairs ext_count)
  in
  let candidate_swaps stuck =
    let active = Hashtbl.create 16 in
    List.iter
      (fun i ->
        List.iter
          (fun q -> Hashtbl.replace active (physical q) ())
          (Gate.qubits (gate_at i)))
      stuck;
    List.filter
      (fun (u, v) -> Hashtbl.mem active u || Hashtbl.mem active v)
      (Device.coupling device)
  in
  let steps_bound = (count * 32) + 1024 in
  let steps = ref 0 in
  while !executed < count do
    incr steps;
    if !steps > steps_bound then
      invalid_arg "Sabre.route: routing failed to make progress";
    flush ();
    if !executed < count then begin
      let stuck = front_two_qubit () in
      if stuck = [] then
        (* only possible transiently; flush will make progress *)
        ()
      else begin
        let extended = extended_set stuck in
        let stuck_pairs = physical_pairs stuck in
        let stuck_count = List.length stuck in
        let ext_pairs = physical_pairs extended in
        let ext_count = List.length extended in
        (* Lookahead-window pruning: [Cost.window_sums] gives, per
           physical qubit, the summed distance of the window's pairs
           touching it, from which a candidate's score is cheaply
           lower-bounded *before* the full evaluation (decay factors are
           >= 1, so the undecayed heuristic bound still holds).  A
           candidate is skipped only when its bound clears the best score
           by a relative margin wide enough to absorb float
           non-associativity between the two computations; bounds inside
           the margin fall back to full evaluation, so the argmin — and
           the emitted stream — never changes.  The bound needs
           [decay >= 0] and [lookahead_weight >= 0]; pruning turns itself
           off otherwise. *)
        let pruning = prune && decay >= 0.0 && lookahead_weight >= 0.0 in
        let stuck_total, stuck_touched =
          if pruning then Cost.window_sums cost stuck_pairs else (0.0, [||])
        in
        let ext_total, ext_touched =
          if pruning then Cost.window_sums cost ext_pairs else (0.0, [||])
        in
        let score_lower_bound u v =
          let window_part total touched count =
            match count with
            | 0 -> 0.0
            | _ ->
              Float.max 0.0
                ((total -. touched.(u) -. touched.(v)) /. float_of_int count)
          in
          window_part stuck_total stuck_touched stuck_count
          +. (lookahead_weight *. window_part ext_total ext_touched ext_count)
          +. (Cost.swap_cost cost u v /. 100.0)
        in
        let best = ref None in
        List.iter
          (fun (u, v) ->
            let skip =
              pruning
              &&
              match !best with
              | None -> false
              | Some (best_score, _, _) ->
                score_lower_bound u v
                > best_score +. (1e-9 *. (1.0 +. Float.abs best_score))
            in
            if not skip then begin
              let score =
                heuristic_swapped ~stuck_pairs ~stuck_count ~ext_pairs
                  ~ext_count u v
                *. decay_factor.(u) *. decay_factor.(v)
                (* the swap itself costs reliability under the noise-aware
                   model: fold it in so weak links are avoided *)
                +. (Cost.swap_cost cost u v /. 100.0)
              in
              match !best with
              | Some (best_score, _, _) when best_score <= score -> ()
              | _ -> best := Some (score, u, v)
            end)
          (candidate_swaps stuck);
        match !best with
        | None -> invalid_arg "Sabre.route: no candidate swap"
        | Some (_, u, v) ->
          emit (Gate.Swap (u, v));
          incr swaps;
          ctx := Layout.swap_physical !ctx u v;
          decay_factor.(u) <- decay_factor.(u) +. decay;
          decay_factor.(v) <- decay_factor.(v) +. decay;
          incr since_reset;
          if !since_reset >= decay_reset_period then begin
            Array.fill decay_factor 0 (Array.length decay_factor) 1.0;
            since_reset := 0
          end
      end
    end
  done;
  let stats =
    { Router.swaps_inserted = !swaps; astar_expansions = 0; greedy_fallbacks = 0 }
  in
  Router.record_route ~router:"sabre" stats;
  {
    Router.circuit =
      Circuit.of_gates
        ~cbits:(Circuit.num_cbits circuit)
        (Device.num_qubits device)
        (List.rev !output);
    initial = layout;
    final = !ctx;
    stats;
  }

(* Per-domain span stacks: spans opened by pool workers on different
   domains nest independently, which is exactly the call-tree shape. *)
(* domain-safe: one cell per domain via DLS *)
let stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = !(Domain.DLS.get stack_key)

let with_span ?(fields = []) ~source name f =
  let st = Domain.DLS.get stack_key in
  let parent = !st in
  st := name :: parent;
  let path = String.concat "/" (List.rev !st) in
  let histogram = Metrics.histogram ("span." ^ name) in
  let started = Unix.gettimeofday () in
  let finish ok =
    let seconds = Unix.gettimeofday () -. started in
    st := parent;
    Metrics.observe histogram seconds;
    if Trace.enabled () then
      Trace.emit ~source ~event:"span"
        ~nd:[ ("seconds", Json.Float seconds) ]
        (("name", Json.String name)
        :: ("path", Json.String path)
        :: ("ok", Json.Bool ok)
        :: fields)
  in
  match f () with
  | result ->
    finish true;
    result
  | exception exn ->
    let backtrace = Printexc.get_raw_backtrace () in
    finish false;
    Printexc.raise_with_backtrace exn backtrace

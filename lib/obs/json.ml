type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

(* Shortest of the fixed-precision renderings that round-trips, so the
   common cases stay readable (0.5, not 0.50000000000000000). *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buffer json =
  match json with
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float f ->
    (* JSON has no inf/nan literals *)
    if Float.is_finite f then Buffer.add_string buffer (float_repr f)
    else Buffer.add_string buffer "null"
  | String s -> escape buffer s
  | List items ->
    Buffer.add_char buffer '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buffer ',';
        write buffer item)
      items;
    Buffer.add_char buffer ']'
  | Obj fields ->
    Buffer.add_char buffer '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buffer ',';
        escape buffer key;
        Buffer.add_char buffer ':';
        write buffer value)
      fields;
    Buffer.add_char buffer '}'

let to_string json =
  let buffer = Buffer.create 256 in
  write buffer json;
  Buffer.contents buffer

type counter = { cname : string; value : int Atomic.t }
type gauge = { gname : string; gvalue : float Atomic.t }

type histogram = {
  hname : string;
  hlock : Mutex.t;
  mutable samples : float array;
  mutable used : int;
  mutable total : float;
}

(* One process-local registry.  Metric handles are created (or found)
   under [registry_lock]; after that, counters and gauges update via
   atomics and each histogram has its own lock, so recording from pool
   worker domains never contends on the registry itself. *)
let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32 (* guarded by registry_lock *)
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16 (* guarded by registry_lock *)
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16 (* guarded by registry_lock *)

let registered table name make =
  Mutex.lock registry_lock;
  let metric =
    match Hashtbl.find_opt table name with
    | Some m -> m
    | None ->
      let m = make () in
      Hashtbl.replace table name m;
      m
  in
  Mutex.unlock registry_lock;
  metric

(* ---- counters ------------------------------------------------------- *)

let counter name =
  registered counters name (fun () ->
      { cname = name; value = Atomic.make 0 })

let add c by = ignore (Atomic.fetch_and_add c.value by)
let incr c = add c 1
let counter_value c = Atomic.get c.value
let counter_name c = c.cname

(* ---- gauges --------------------------------------------------------- *)

let gauge name =
  registered gauges name (fun () ->
      { gname = name; gvalue = Atomic.make 0.0 })

let set g v = Atomic.set g.gvalue v
let gauge_value g = Atomic.get g.gvalue
let gauge_name g = g.gname

(* ---- histograms ----------------------------------------------------- *)

let histogram name =
  registered histograms name (fun () ->
      {
        hname = name;
        hlock = Mutex.create ();
        samples = Array.make 64 0.0;
        used = 0;
        total = 0.0;
      })

let observe h v =
  Mutex.lock h.hlock;
  if h.used = Array.length h.samples then begin
    let grown = Array.make (2 * h.used) 0.0 in
    Array.blit h.samples 0 grown 0 h.used;
    h.samples <- grown
  end;
  h.samples.(h.used) <- v;
  h.used <- h.used + 1;
  h.total <- h.total +. v;
  Mutex.unlock h.hlock

let histogram_count h =
  Mutex.lock h.hlock;
  let n = h.used in
  Mutex.unlock h.hlock;
  n

let histogram_sum h =
  Mutex.lock h.hlock;
  let s = h.total in
  Mutex.unlock h.hlock;
  s

let sorted_samples h =
  Mutex.lock h.hlock;
  let copy = Array.sub h.samples 0 h.used in
  Mutex.unlock h.hlock;
  Array.sort compare copy;
  copy

(* Nearest-rank over the recorded samples (exact, not bucketed): the
   index is monotone in [rank], so quantiles are monotone too. *)
let quantile h rank =
  if not (Float.is_finite rank) || rank < 0.0 || rank > 1.0 then
    invalid_arg "Metrics.quantile: rank must be within [0, 1]";
  let sorted = sorted_samples h in
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Metrics.quantile: empty histogram";
  let index = int_of_float (Float.round (rank *. float_of_int (n - 1))) in
  sorted.(max 0 (min (n - 1) index))

let histogram_name h = h.hname

(* ---- registry-wide operations --------------------------------------- *)

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g.gvalue 0.0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Mutex.lock h.hlock;
      h.used <- 0;
      h.total <- 0.0;
      Mutex.unlock h.hlock)
    histograms;
  Mutex.unlock registry_lock

let by_name table =
  Mutex.lock registry_lock;
  let entries = Hashtbl.fold (fun name m acc -> (name, m) :: acc) table [] in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let fold_counters f init =
  List.fold_left
    (fun acc (name, c) -> f acc name (counter_value c))
    init (by_name counters)

let fold_gauges f init =
  List.fold_left
    (fun acc (name, g) -> f acc name (gauge_value g))
    init (by_name gauges)

let fold_histograms f init =
  List.fold_left (fun acc (name, h) -> f acc name h) init (by_name histograms)

let pp ppf () =
  let live_histograms =
    List.filter (fun (_, h) -> histogram_count h > 0) (by_name histograms)
  in
  Format.fprintf ppf "@[<v>== metrics ==@,";
  (match by_name counters with
  | [] -> ()
  | entries ->
    Format.fprintf ppf "counters:@,";
    List.iter
      (fun (name, c) ->
        Format.fprintf ppf "  %-32s %d@," name (counter_value c))
      entries);
  (match by_name gauges with
  | [] -> ()
  | entries ->
    Format.fprintf ppf "gauges:@,";
    List.iter
      (fun (name, g) ->
        Format.fprintf ppf "  %-32s %g@," name (gauge_value g))
      entries);
  (match live_histograms with
  | [] -> ()
  | entries ->
    Format.fprintf ppf "histograms:%33s%9s%9s%9s%9s@," "count" "mean" "p50"
      "p90" "max";
    List.iter
      (fun (name, h) ->
        let n = histogram_count h in
        Format.fprintf ppf "  %-32s %8d %8.4f %8.4f %8.4f %8.4f@," name n
          (histogram_sum h /. float_of_int n)
          (quantile h 0.5) (quantile h 0.9) (quantile h 1.0))
      entries);
  Format.fprintf ppf "@]"

(* Histogram observations are (almost always) durations, so their
   statistics go under "nd"; counter and gauge values in this codebase
   are deterministic work counts and stay top-level. *)
let snapshot_to_trace () =
  if Trace.enabled () then begin
    List.iter
      (fun (name, c) ->
        Trace.emit ~source:"metrics" ~event:"counter"
          [ ("name", Json.String name); ("value", Json.Int (counter_value c)) ])
      (by_name counters);
    List.iter
      (fun (name, g) ->
        Trace.emit ~source:"metrics" ~event:"gauge"
          [ ("name", Json.String name); ("value", Json.Float (gauge_value g)) ])
      (by_name gauges);
    List.iter
      (fun (name, h) ->
        let n = histogram_count h in
        if n > 0 then
          Trace.emit ~source:"metrics" ~event:"histogram"
            ~nd:
              [
                ("sum", Json.Float (histogram_sum h));
                ("p50", Json.Float (quantile h 0.5));
                ("p90", Json.Float (quantile h 0.9));
                ("max", Json.Float (quantile h 1.0));
              ]
            [ ("name", Json.String name); ("count", Json.Int n) ])
      (by_name histograms)
  end

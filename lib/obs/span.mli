(** Lightweight nesting timers.

    [with_span ~source name f] pushes [name] onto the current domain's
    span stack, runs [f], and on the way out (normal return {e or}
    exception) pops the stack, records the wall-clock duration into the
    [span.<name>] histogram, and emits a {!Trace} event whose
    deterministic fields are the span name, its full [path]
    (outermost/innermost, ["/"]-joined), an [ok] flag, plus any caller
    [fields]; the duration lives under ["nd"].

    Span stacks are per-domain ({!Domain.DLS}), so spans opened inside
    pool workers nest within that worker's call tree only. *)

val with_span :
  ?fields:Trace.field list -> source:string -> string -> (unit -> 'a) -> 'a
(** The exception (with its backtrace) is re-raised after the span is
    closed — the span stack is always restored. *)

val stack : unit -> string list
(** Names of the open spans on the calling domain, innermost first. *)

(** Minimal JSON tree and compact serializer for the trace sink.

    Emission only — the observability layer never parses JSON.  Strings
    are escaped per RFC 8259; non-finite floats (which JSON cannot
    represent) serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line, no spaces) rendering — one trace event per
    line stays one line. *)

(** Structured JSONL trace sink.

    Every event is one JSON object on one line:

    {v
    {"source":"sim","event":"mc_chunk","chunk":3,"trials":4096,
     "successes":471,"nd":{"seconds":0.0021}}
    v}

    [source] names the subsystem ([engine], [sim], [mapper], ...),
    [event] the event kind; the remaining top-level fields are
    {e deterministic} — identical across runs, worker counts, and
    machines.  Anything non-deterministic (durations, timestamps,
    hostnames) must live under the dedicated ["nd"] key so consumers
    and tests can strip it in one place.

    The sink is process-global and pluggable.  With no sink attached
    (the [Noop] default) {!emit} costs a single atomic load, so
    instrumentation can stay compiled in unconditionally.  Writes are
    serialized under an internal lock: events from concurrent domains
    interleave as whole lines, never mid-line.

    Design rule (carried over from the execution engine): tracing must
    never perturb results.  Nothing in this module touches any RNG or
    any output stream of the instrumented program. *)

type sink = { write : string -> unit; flush : unit -> unit }

val set_sink : sink option -> unit
(** [set_sink (Some s)] routes events to [s]; [set_sink None] restores
    Noop mode. *)

val enabled : unit -> bool
(** Whether a sink is attached.  Callers building expensive event
    payloads should check this first; {!emit} checks it either way. *)

val flush : unit -> unit
(** Flush the attached sink, if any. *)

type field = string * Json.t

val emit : ?nd:field list -> source:string -> event:string -> field list -> unit
(** [emit ~source ~event fields] writes one event line.  [fields] must
    be deterministic; put durations and other run-varying values in
    [nd]. No-op when no sink is attached. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f] runs [f] with [s] attached, then flushes it and
    restores the previous sink (also on exception). *)

val with_file : string -> (unit -> 'a) -> 'a
(** [with_file path f] truncates/creates [path] and runs [f] with a
    sink appending JSONL lines to it; the file is flushed and closed
    when [f] returns or raises. *)

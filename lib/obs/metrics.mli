(** Process-local metric registry: named counters, gauges, and latency
    histograms.

    Handles are registered on first use and live for the process; a
    second [counter name] call returns the same underlying metric, so
    subsystems can hold handles at module-init time while dumps and
    tests look metrics up by name.  Recording is safe from any domain —
    counters and gauges are atomics, each histogram has its own lock —
    and deliberately cheap enough to leave compiled in.

    Naming convention: dotted [subsystem.metric] names, e.g.
    [engine.pool.chunks], [sim.mc.trials], [mapper.swaps_inserted].

    Recording a metric must never perturb the instrumented computation:
    nothing here touches RNG state or program output. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Find-or-create the counter named [name] (starts at 0). *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val counter_name : counter -> string

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
(** Find-or-create the gauge named [name] (starts at 0.0). *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram
(** Find-or-create the histogram named [name].  Observations are kept
    exactly (no bucketing), so quantiles are exact order statistics;
    intended for latency-style series of up to ~millions of points. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h rank] is the nearest-rank order statistic for [rank] in
    [0, 1]; monotone in [rank].
    @raise Invalid_argument on an empty histogram or a rank outside
    [0, 1]. *)

val histogram_name : histogram -> string

(** {1 Registry-wide operations} *)

val reset : unit -> unit
(** Zero every registered metric {e in place} — handles held by
    instrumented modules stay valid.  Used between experiments and by
    tests. *)

val fold_counters : ('a -> string -> int -> 'a) -> 'a -> 'a
(** Fold over counters in name order. *)

val fold_gauges : ('a -> string -> float -> 'a) -> 'a -> 'a
val fold_histograms : ('a -> string -> histogram -> 'a) -> 'a -> 'a

val pp : Format.formatter -> unit -> unit
(** Human-readable dump of the whole registry, sorted by name.
    Contains non-deterministic values (histogram timings) — print it to
    stderr, never into experiment stdout. *)

val snapshot_to_trace : unit -> unit
(** Emit one {!Trace} event per registered metric ([source = "metrics"],
    events [counter]/[gauge]/[histogram]).  Counter and gauge values are
    deterministic top-level fields; histogram statistics (timings) go
    under ["nd"].  No-op when no sink is attached. *)

type sink = { write : string -> unit; flush : unit -> unit }

(* [enabled] is the fast path consulted on every potential event; the
   sink itself is read under [lock] only once an event is really being
   produced, so Noop mode costs one atomic load. *)
let active = Atomic.make false
let lock = Mutex.create ()
let sink : sink option ref = ref None (* guarded by lock *)

let enabled () = Atomic.get active

let set_sink s =
  Mutex.lock lock;
  sink := s;
  Atomic.set active (s <> None);
  Mutex.unlock lock

let flush () =
  Mutex.lock lock;
  (match !sink with Some s -> s.flush () | None -> ());
  Mutex.unlock lock

type field = string * Json.t

let emit ?(nd = []) ~source ~event fields =
  if enabled () then begin
    let deterministic =
      ("source", Json.String source) :: ("event", Json.String event) :: fields
    in
    let all =
      if nd = [] then deterministic
      else deterministic @ [ ("nd", Json.Obj nd) ]
    in
    let line = Json.to_string (Json.Obj all) ^ "\n" in
    Mutex.lock lock;
    (match !sink with Some s -> s.write line | None -> ());
    Mutex.unlock lock
  end

let with_sink s f =
  Mutex.lock lock;
  let previous = !sink in
  sink := Some s;
  Atomic.set active true;
  Mutex.unlock lock;
  Fun.protect
    ~finally:(fun () ->
      s.flush ();
      Mutex.lock lock;
      sink := previous;
      Atomic.set active (previous <> None);
      Mutex.unlock lock)
    f

let with_file path f =
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      with_sink
        {
          write = (fun line -> output_string channel line);
          flush = (fun () -> Stdlib.flush channel);
        }
        f)

(** The retention/recompilation trade-off behind {!Vqc_drift}: compile
    plans on one history day, score them against the next, and price
    each retention threshold in retained fraction and PST given up
    versus a wholesale recompile. *)

val run : Format.formatter -> Context.t -> unit

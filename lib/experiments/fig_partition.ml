module Catalog = Vqc_workloads.Catalog
module Partition = Vqc_partition.Partition
module Monte_carlo = Vqc_sim.Monte_carlo
module Rng = Vqc_rng.Rng

let run ppf (ctx : Context.t) =
  Report.section ppf
    "Figure 16: STPT, two weak copies vs one strong copy (normalized to \
     two copies)";
  (* with an estimator configured, the single strong copy's PST gains an
     adaptive Monte-Carlo interval (simulated on the copy's restricted
     sub-device); off by default so the table stays byte-identical *)
  let ci_cells (copy : Partition.copy) =
    match ctx.Context.estimator with
    | None -> []
    | Some config ->
      let e =
        Monte_carlo.run_adaptive ~jobs:ctx.jobs ~config
          (Rng.make (ctx.seed + 105))
          copy.Partition.device copy.Partition.physical
      in
      [ Report.estimate_cell e ]
  in
  let ci_header =
    match ctx.Context.estimator with
    | None -> []
    | Some _ -> [ "single MC [95% CI]" ]
  in
  let rows =
    List.map
      (fun (entry : Catalog.entry) ->
        let cmp = Partition.compare_strategies ctx.q20 entry.circuit in
        [
          entry.name;
          Report.float_cell ~digits:3 cmp.Partition.copy_x.pst;
          Report.float_cell ~digits:3 cmp.Partition.copy_y.pst;
          Report.float_cell ~digits:3 cmp.Partition.single.pst;
          "1.00";
          Report.float_cell ~digits:2
            (cmp.Partition.stpt_single /. cmp.Partition.stpt_two);
        ]
        @ ci_cells cmp.Partition.single)
      Catalog.partition_suite
  in
  Report.table ppf
    ~header:
      ([
         "workload";
         "PST copy-X";
         "PST copy-Y";
         "PST single";
         "two copies (norm)";
         "one strong copy";
       ]
      @ ci_header)
    rows;
  Format.fprintf ppf
    "@[<v>[paper: two copies win for bv-10, one strong copy wins for \
     qft-10 -- the decision is workload-dependent]@,@]"

(** Shared experiment configuration: the simulated devices and calibration
    histories every figure/table reproduction draws from.

    Everything is derived deterministically from one seed, so a whole
    experiment run is repeatable; pass a different seed to check that the
    conclusions are not an artifact of one calibration draw. *)

type t = {
  seed : int;
  jobs : int;
      (** worker-domain budget for the engine-backed sweeps (default 1) *)
  estimator : Vqc_sim.Estimator.config option;
      (** when set, Monte-Carlo experiments estimate adaptively
          ({!Vqc_sim.Monte_carlo.run_adaptive}) and print CI columns;
          [None] (the default) keeps the fixed-trials paths and their
          byte-exact historical output *)
  history : Vqc_device.History.t;
      (** 52 daily Q20 calibrations (Figures 8 and 14) *)
  samples : Vqc_device.History.t;
      (** 100 calibration reports (the distribution Figures 5–7) *)
  q20 : Vqc_device.Device.t;
      (** Q20 with the 52-day average calibration — the main configuration *)
  q5 : Vqc_device.Device.t;  (** Q5 Tenerife (Section 7) *)
}

val make : seed:int -> t
(** Single-job context: the engine-backed sweeps run inline. *)

val with_jobs : int -> t -> t
(** [with_jobs jobs ctx] sets the worker-domain budget handed to
    {!Vqc_engine.Pool} by the sweeps that fan out (the per-day study,
    the seed sweep, the Monte-Carlo crosscheck); it never affects
    results, only wall-clock time.
    @raise Invalid_argument if [jobs < 1]. *)

val with_estimator : Vqc_sim.Estimator.config -> t -> t
(** [with_estimator config ctx] switches the Monte-Carlo experiments to
    adaptive estimation with [config] (the [--precision]/[--max-trials]
    CLI flags build it).  Output gains CI columns but remains
    byte-identical across [jobs] values.
    @raise Invalid_argument if {!Vqc_sim.Estimator.validate_config}
    rejects [config]. *)

val default : t
(** [make ~seed:2]. *)

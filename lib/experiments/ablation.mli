(** Ablations for the design choices DESIGN.md calls out — not paper
    artifacts, but sanity probes behind them. *)

val mah_sweep : Format.formatter -> Context.t -> unit
(** VQM with MAH in {0, 2, 4, 8, unlimited}: relative PST and inserted
    SWAPs (paper claims MAH=4 tracks unconstrained VQM). *)

val coherence_sweep : Format.formatter -> Context.t -> unit
(** PST breakdown under coherence scale 0 / default / 1.0, plus the
    gate-vs-coherence failure-likelihood ratio the model is calibrated to
    (paper Section 4.4: ~16x for bv-20). *)

val activity_window : Format.formatter -> Context.t -> unit
(** VQA first-N-layer activity analysis window sweep. *)

val mc_crosscheck : Format.formatter -> Context.t -> unit
(** Monte-Carlo PST vs the exact analytic value for representative
    benchmark x policy combinations.  With an estimator configured on
    the context the fixed 200k-trial column becomes an adaptive estimate
    with its confidence interval, trial spend, and stop reason. *)

val estimator_study : Format.formatter -> Context.t -> unit
(** What adaptive estimation buys on the Table-1 workloads (VQA+VQM):
    per workload, the analytic PST, the adaptive estimate with its
    tighter 95%-family interval, the trials consumed, and the share of
    the fixed budget saved.  Uses the context's estimator configuration,
    or {!Vqc_sim.Estimator.default_config} when none is set. *)

val extended_suite : Format.formatter -> Context.t -> unit
(** Extension beyond the paper: the policies applied to the extended
    benchmark suite (Deutsch–Jozsa, Grover, W-state, QAOA), each
    compiled plan additionally checked functionally equivalent to its
    source program by the ideal state-vector simulator. *)

val readout_extension : Format.formatter -> Context.t -> unit
(** Extension beyond the paper: the readout-aware VQA candidate vs the
    paper's link-only VQA (measured qubits prefer low-readout-error
    physical qubits). *)

val alap : Format.formatter -> Context.t -> unit
(** Extension beyond the paper: ALAP scheduling — idle-exposure
    reduction by delaying state preparation (the idle-minimization trick
    behind dynamical-decoupling-free coherence gains). *)

val staleness : Format.formatter -> Context.t -> unit
(** Extension beyond the paper: how much of the VQA+VQM benefit survives
    when the calibration used to compile is days out of date (the paper
    assumes the characterization "remains valid during the execution",
    Section 5.3, and recompiles every cycle, footnote 2 — this quantifies
    why). *)

val seed_sweep : Format.formatter -> Context.t -> unit
(** The honest error bar: the VQA+VQM benefit per benchmark across ten
    synthetic chips (calibration seeds), reported as geomean [min, max]. *)

val sabre : Format.formatter -> Context.t -> unit
(** Extension beyond the paper: the paper's layered-A* policies against
    a SABRE-style lookahead router and its noise-adaptive variant — the
    algorithmic lineage that actually shipped (Qiskit's SabreSwap /
    noise-adaptive layout descend from these two papers, both ASPLOS
    2019). *)

val bridge : Format.formatter -> Context.t -> unit
(** Extension beyond the paper: bridged CNOT execution
    ({!Vqc_mapper.Compiler.vqm_bridge}) vs plain VQM — a bridge pays the
    same four CNOTs as SWAP-then-CNOT but displaces nobody. *)

val topology : Format.formatter -> Context.t -> unit
(** Extension beyond the paper: the VQA+VQM benefit across coupling-map
    generations (Q20 Tokyo with diagonals; the sparser Melbourne ladder;
    a Bristlecone-style dense grid; a Falcon-style heavy-hex) with the
    same calibration statistics — does variability-awareness matter more
    when connectivity is scarce? *)

val trajectory : Format.formatter -> Context.t -> unit
(** Extension beyond the paper: noisy-trajectory simulation of the Q5
    suite — the probability the machine returns the {e correct answer}
    (which lower-bounds at PST and exceeds it by whatever errors the
    algorithm tolerates), under both policies. *)

val peephole : Format.formatter -> Context.t -> unit
(** Extension beyond the paper: peephole simplification of the routed
    circuit ({!Vqc_opt.Peephole}) composed with each policy — fewer gates
    means fewer error opportunities, on top of steering the remaining
    ones to strong links. *)

val crosstalk : Format.formatter -> Context.t -> unit
(** Extension beyond the paper (its Section 9 lists uncorrelated errors
    as a limitation): PST under the crosstalk-inflated model, where
    simultaneous two-qubit gates on adjacent couplers interfere.  Also
    shows how the policy benefit shifts when correlations exist. *)

val calibration_model : Format.formatter -> Context.t -> unit
(** Why the calibration model's shape matters: the VQA+VQM benefit under
    the default core+defect mixture vs an i.i.d. log-normal fit to the
    same mean/std.  The benefit is a property of the distribution's
    tails, not of its first two moments (the DESIGN.md substitution
    rationale, quantified). *)

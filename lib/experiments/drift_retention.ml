module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability
module Catalog = Vqc_workloads.Catalog
module Device = Vqc_device.Device
module History = Vqc_device.History
module Layout = Vqc_mapper.Layout
module Router = Vqc_mapper.Router
module Staleness = Vqc_drift.Staleness
module Retention = Vqc_drift.Retention
module Diagnostic = Vqc_diag.Diagnostic

(* A compiled plan scored across one calibration day boundary: enough to
   replay every retention threshold without recompiling anything. *)
type scored = {
  staleness : float;
  reverifies_clean : bool;
  pst_if_retained : float;  (** yesterday's plan under today's errors *)
  pst_if_recompiled : float;  (** today's plan under today's errors *)
}

let score_plan ~before ~after policy circuit =
  let compiled = Compiler.compile before policy circuit in
  let physical = compiled.Compiler.physical in
  let score = Staleness.score ~before ~after physical in
  let diagnostics =
    Retention.reverify ~device:after ~source:circuit ~physical
      ~initial:(Layout.assignment compiled.Compiler.initial)
      ~final:(Layout.assignment compiled.Compiler.final)
      ~swaps:compiled.Compiler.stats.Router.swaps_inserted
  in
  let fresh = Compiler.compile after policy circuit in
  {
    staleness = Staleness.staleness score;
    reverifies_clean = not (Diagnostic.has_errors diagnostics);
    pst_if_retained = Reliability.pst after physical;
    pst_if_recompiled = Reliability.pst after fresh.Compiler.physical;
  }

let run ppf (ctx : Context.t) =
  Report.section ppf
    "Calibration drift: selective retention vs wholesale recompilation";
  let workloads = [ "bv-16"; "qft-12"; "alu" ] in
  let policies =
    [
      ("baseline", Compiler.baseline);
      ("vqm", Compiler.vqm);
      ("vqa+vqm", Compiler.vqa_vqm);
    ]
  in
  let starts = [ 0; 10; 20; 30; 40 ] in
  let device_on day =
    Device.with_calibration ctx.q20 (History.day ctx.history day)
  in
  (* Score each (day boundary, workload, policy) plan once; every
     threshold row below just re-reads the scores. *)
  let scored =
    List.concat_map
      (fun start ->
        let before = device_on start in
        let after = device_on (start + 1) in
        List.concat_map
          (fun name ->
            let circuit = (Catalog.find name).Catalog.circuit in
            List.map
              (fun (_, policy) -> score_plan ~before ~after policy circuit)
              policies)
          workloads)
      starts
  in
  let total = List.length scored in
  let thresholds = [ 0.0; 0.01; 0.02; 0.05; 0.10; 0.25 ] in
  let rows =
    List.map
      (fun threshold ->
        let policy = { Retention.threshold } in
        let retained =
          List.filter
            (fun s ->
              (not (Retention.wholesale policy))
              && s.staleness <= threshold && s.reverifies_clean)
            scored
        in
        let losses =
          List.map
            (fun s -> 1. -. (s.pst_if_retained /. s.pst_if_recompiled))
            retained
        in
        let mean xs =
          match xs with
          | [] -> 0.
          | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
        in
        [
          (if Retention.wholesale policy then "0 (wholesale)"
           else Report.float_cell ~digits:2 threshold);
          Printf.sprintf "%d/%d" (List.length retained) total;
          Report.float_cell (mean losses);
          Report.float_cell
            (match losses with
            | [] -> 0.
            | _ -> List.fold_left Float.max 0. losses);
        ])
      thresholds
  in
  Report.table ppf
    ~header:
      [
        "threshold"; "retained plans"; "mean PST loss (retained)";
        "worst PST loss";
      ]
    rows;
  Format.fprintf ppf
    "@[<v>[plans compiled on day d, scored against day d+1 across five \
     day boundaries; the loss columns price what retaining a plan \
     gives up against recompiling it — the paper's wholesale regime is \
     the threshold-0 row, and every retained plan re-verified clean \
     against the new calibration]@,@]"

type experiment = {
  id : string;
  title : string;
  run : Format.formatter -> Context.t -> unit;
}

let all =
  [
    { id = "fig5"; title = "T1/T2 coherence distributions"; run = Fig_variability.fig5 };
    { id = "fig6"; title = "single-qubit error distribution"; run = Fig_variability.fig6 };
    { id = "fig7"; title = "two-qubit error distribution"; run = Fig_variability.fig7 };
    { id = "fig8"; title = "temporal variation of link errors"; run = Fig_variability.fig8 };
    { id = "fig9"; title = "Q20 layout and link failure rates"; run = Fig_variability.fig9 };
    { id = "tab1"; title = "benchmark characteristics"; run = Table1.run };
    { id = "fig12"; title = "VQM relative PST"; run = Fig_policies.fig12 };
    { id = "fig13"; title = "native/baseline/VQM/VQA+VQM comparison"; run = Fig_policies.fig13 };
    { id = "fig14"; title = "per-day VQA+VQM benefit (bv-16)"; run = Fig_daily.run };
    { id = "tab2"; title = "sensitivity to error scaling"; run = Fig_scaling.run };
    { id = "tab3"; title = "IBM-Q5 evaluation"; run = Fig_q5.run };
    { id = "fig16"; title = "one strong copy vs two weak copies"; run = Fig_partition.run };
    { id = "abl-mah"; title = "ablation: MAH budget sweep"; run = Ablation.mah_sweep };
    { id = "abl-coherence"; title = "ablation: coherence weighting"; run = Ablation.coherence_sweep };
    { id = "abl-window"; title = "ablation: VQA activity window"; run = Ablation.activity_window };
    { id = "abl-mc"; title = "ablation: Monte-Carlo crosscheck"; run = Ablation.mc_crosscheck };
    { id = "est-adaptive"; title = "adaptive estimator: trials-to-target study"; run = Ablation.estimator_study };
    { id = "abl-model"; title = "ablation: calibration-model shape"; run = Ablation.calibration_model };
    { id = "ext-suite"; title = "extension: extended benchmark suite"; run = Ablation.extended_suite };
    { id = "ext-readout"; title = "extension: readout-aware VQA"; run = Ablation.readout_extension };
    { id = "ext-crosstalk"; title = "extension: crosstalk model"; run = Ablation.crosstalk };
    { id = "ext-peephole"; title = "extension: peephole simplification"; run = Ablation.peephole };
    { id = "ext-trajectory"; title = "extension: noisy-trajectory accuracy"; run = Ablation.trajectory };
    { id = "ext-topology"; title = "extension: cross-topology benefit"; run = Ablation.topology };
    { id = "ext-bridge"; title = "extension: bridged CNOT execution"; run = Ablation.bridge };
    { id = "ext-sabre"; title = "extension: SABRE-style routing"; run = Ablation.sabre };
    { id = "ext-alap"; title = "extension: ALAP scheduling"; run = Ablation.alap };
    { id = "ext-staleness"; title = "extension: stale-calibration study"; run = Ablation.staleness };
    { id = "drift-retention"; title = "calibration drift: retention vs recompilation"; run = Drift_retention.run };
    { id = "ext-seeds"; title = "seed sweep (error bars)"; run = Ablation.seed_sweep };
  ]

let find id =
  match List.find_opt (fun e -> e.id = id) all with
  | Some e -> e
  | None -> raise Not_found

let ids () = List.map (fun e -> e.id) all

let run_all ppf ctx =
  List.iter
    (fun e ->
      e.run ppf ctx;
      Format.pp_print_flush ppf ())
    all

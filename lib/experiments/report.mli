(** Plain-text rendering of experiment results: fixed-width tables, ASCII
    histograms and day series — enough to eyeball every figure of the
    paper in a terminal or a log file. *)

val table :
  Format.formatter -> header:string list -> string list list -> unit
(** Render rows under a header with per-column width = max cell width.
    Every row must have the header's arity.
    @raise Invalid_argument on ragged rows. *)

val histogram :
  Format.formatter ->
  ?bins:int ->
  ?width:int ->
  title:string ->
  unit_label:string ->
  float list ->
  unit
(** Horizontal-bar histogram of a sample ([bins] defaults to 12, bar
    [width] to 50 characters).
    @raise Invalid_argument on an empty sample. *)

val series :
  Format.formatter ->
  ?width:int ->
  title:string ->
  (string * float) list ->
  unit
(** Labelled bar series (one row per point), scaled to the maximum. *)

val float_cell : ?digits:int -> float -> string
(** Fixed-point rendering ([digits] defaults to 4). *)

val estimate_cell : Vqc_sim.Estimator.estimate -> string
(** Adaptive-estimate rendering — the mean and the tighter of the two
    confidence intervals, e.g. ["0.0970 [0.0961, 0.0980]"]. *)

val ratio_cell : float -> string
(** ["1.43x"]-style rendering. *)

val section : Format.formatter -> string -> unit
(** Underlined section heading. *)

module Device = Vqc_device.Device
module History = Vqc_device.History
module Topologies = Vqc_device.Topologies
module Calibration_model = Vqc_device.Calibration_model

type t = {
  seed : int;
  jobs : int;
  estimator : Vqc_sim.Estimator.config option;
  history : History.t;
  samples : History.t;
  q20 : Device.t;
  q5 : Device.t;
}

let make ~seed =
  let jobs = 1 in
  let coupling = Topologies.ibm_q20_tokyo in
  let history = History.generate ~days:52 ~seed ~coupling 20 in
  let samples = History.generate ~days:100 ~seed:(seed + 1) ~coupling 20 in
  let q20 =
    Device.make ~name:"ibm-q20-tokyo" ~coupling (History.average history)
  in
  let q5 = Calibration_model.ibm_q5 ~seed:((10 * seed) + 1) in
  { seed; jobs; estimator = None; history; samples; q20; q5 }

let with_jobs jobs ctx =
  if jobs < 1 then invalid_arg "Context.with_jobs: need at least one job";
  { ctx with jobs }

let with_estimator config ctx =
  (match Vqc_sim.Estimator.validate_config config with
  | Ok _ -> ()
  | Error message -> invalid_arg ("Context.with_estimator: " ^ message));
  { ctx with estimator = Some config }

(* Seed 2 is the default "representative chip": among the first 30 seeds
   its policy response is closest to the paper's headline ratios (the
   calibration model is matched on distribution statistics; individual
   draws vary the way individual machines do).  Any other seed is equally
   valid — pass --seed to the binaries to try one. *)
let default = make ~seed:2

module Device = Vqc_device.Device
module History = Vqc_device.History
module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability
module Catalog = Vqc_workloads.Catalog
module Pool = Vqc_engine.Pool

let run ppf (ctx : Context.t) =
  Report.section ppf "Figure 14: per-day relative PST for bv-16 (VQA+VQM)";
  let circuit = (Catalog.find "bv-16").Catalog.circuit in
  let dispersions = History.daily_dispersion ctx.history in
  (* each day is an independent compile + analysis; fan the 52 of them
     across the pool (results come back in day order regardless) *)
  let benefits =
    Pool.with_pool ~jobs:ctx.jobs (fun pool ->
        Pool.map pool
          ~f:(fun _ day ->
            let device =
              Device.with_calibration ctx.q20 (History.day ctx.history day)
            in
            let pst policy =
              let compiled = Compiler.compile device policy circuit in
              Reliability.pst device compiled.Compiler.physical
            in
            pst Compiler.vqa_vqm /. pst Compiler.baseline)
          (List.init (History.days ctx.history) Fun.id))
  in
  let points =
    List.mapi
      (fun day benefit ->
        (Printf.sprintf "day %02d (cov %.2f)" (day + 1) dispersions.(day), benefit))
      benefits
  in
  Report.series ppf ~title:"relative PST (VQA+VQM / baseline) per day" points;
  let count = float_of_int (List.length benefits) in
  let mean = List.fold_left ( +. ) 0.0 benefits /. count in
  (* correlation between a day's dispersion and its benefit *)
  let xs = Array.to_list dispersions in
  let mean_of l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  let mx = mean_of xs and my = mean_of benefits in
  let zip = List.combine xs benefits in
  let cov = mean_of (List.map (fun (x, y) -> (x -. mx) *. (y -. my)) zip) in
  let sx = sqrt (mean_of (List.map (fun (x, _) -> (x -. mx) ** 2.0) zip)) in
  let sy = sqrt (mean_of (List.map (fun (_, y) -> (y -. my) ** 2.0) zip)) in
  Format.fprintf ppf
    "@[<v>average benefit: %.2fx; correlation(day dispersion, benefit) = \
     %.2f@,[paper: average marked by dotted line; larger benefit on \
     higher-variability days]@,@]"
    mean
    (cov /. (sx *. sy))

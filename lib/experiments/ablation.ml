module Compiler = Vqc_mapper.Compiler
module Allocation = Vqc_mapper.Allocation
module Reliability = Vqc_sim.Reliability
module Monte_carlo = Vqc_sim.Monte_carlo
module Estimator = Vqc_sim.Estimator
module Rng = Vqc_rng.Rng
module Catalog = Vqc_workloads.Catalog

let mah_sweep ppf (ctx : Context.t) =
  Report.section ppf "Ablation: Maximum-Additional-Hops budget (VQM)";
  let budgets = [ Some 0; Some 2; Some 4; Some 8; None ] in
  let budget_label = function
    | Some mah -> string_of_int mah
    | None -> "unlimited"
  in
  let benchmarks = [ "bv-16"; "qft-12"; "rnd-LD" ] in
  let rows =
    List.concat_map
      (fun name ->
        let circuit = (Catalog.find name).Catalog.circuit in
        let base =
          Compiler.compile ctx.q20 Compiler.baseline circuit
          |> fun c -> Reliability.pst ctx.q20 c.Compiler.physical
        in
        List.map
          (fun budget ->
            let policy =
              match budget with
              | Some mah -> Compiler.vqm_limited mah
              | None -> Compiler.vqm
            in
            let compiled = Compiler.compile ctx.q20 policy circuit in
            let pst = Reliability.pst ctx.q20 compiled.Compiler.physical in
            [
              name;
              budget_label budget;
              string_of_int (Compiler.swap_overhead compiled);
              Report.ratio_cell (pst /. base);
            ])
          budgets)
      benchmarks
  in
  Report.table ppf ~header:[ "workload"; "MAH"; "swaps"; "relative PST" ] rows

let coherence_sweep ppf (ctx : Context.t) =
  Report.section ppf "Ablation: coherence-error weighting";
  let circuit = (Catalog.find "bv-20").Catalog.circuit in
  let compiled = Compiler.compile ctx.q20 Compiler.baseline circuit in
  let rows =
    List.map
      (fun scale ->
        let b =
          Reliability.analyze ~coherence_scale:scale ctx.q20
            compiled.Compiler.physical
        in
        let gate_success =
          b.Reliability.one_qubit_success *. b.Reliability.two_qubit_success
          *. b.Reliability.measure_success
        in
        let gate_failure = 1.0 -. gate_success in
        let coherence_failure = 1.0 -. b.Reliability.coherence_survival in
        let ratio =
          if coherence_failure > 0.0 then gate_failure /. coherence_failure
          else Float.infinity
        in
        [
          Printf.sprintf "%.2f" scale;
          Report.float_cell b.Reliability.pst;
          Report.float_cell b.Reliability.coherence_survival;
          (if Float.is_integer ratio && ratio = Float.infinity then "inf"
           else Printf.sprintf "%.1f" ratio);
        ])
      [ 0.0; Reliability.default_coherence_scale; 1.0 ]
  in
  Report.table ppf
    ~header:
      [ "coherence scale"; "PST (bv-20)"; "coherence survival"; "gate/coh ratio" ]
    rows;
  Format.fprintf ppf
    "@[<v>[paper Section 4.4: gate errors ~16x more likely to fail a \
     bv-20 trial than coherence errors -- the default scale is \
     calibrated to that regime]@,@]"

let activity_window ppf (ctx : Context.t) =
  Report.section ppf "Ablation: VQA activity-analysis window (first-N layers)";
  let windows = [ Some 1; Some 4; Some 16; None ] in
  let rows =
    List.concat_map
      (fun name ->
        let circuit = (Catalog.find name).Catalog.circuit in
        let base =
          Compiler.compile ctx.q20 Compiler.baseline circuit
          |> fun c -> Reliability.pst ctx.q20 c.Compiler.physical
        in
        List.map
          (fun window ->
            let policy =
              {
                Compiler.vqa_vqm with
                Compiler.allocations =
                  [
                    Allocation.Vqa
                      { activity_window = window; readout_aware = false };
                  ];
              }
            in
            let compiled = Compiler.compile ctx.q20 policy circuit in
            let pst = Reliability.pst ctx.q20 compiled.Compiler.physical in
            [
              name;
              (match window with Some w -> string_of_int w | None -> "all");
              Report.ratio_cell (pst /. base);
            ])
          windows)
      [ "alu"; "bv-16" ]
  in
  Report.table ppf ~header:[ "workload"; "window"; "relative PST" ] rows

let extended_suite ppf (ctx : Context.t) =
  Report.section ppf
    "Extension: policies on the extended suite (with functional check)";
  let module Sv = Vqc_statevector.Statevector in
  let rows =
    List.map
      (fun (entry : Catalog.entry) ->
        let circuit = entry.Catalog.circuit in
        let compile policy = Compiler.compile ctx.q20 policy circuit in
        let base = compile Compiler.baseline in
        let best = compile Compiler.vqa_vqm in
        let pst compiled = Reliability.pst ctx.q20 compiled.Compiler.physical in
        let source = Sv.measurement_distribution circuit in
        let equivalent compiled =
          Sv.distribution_distance source
            (Sv.measurement_distribution compiled.Compiler.physical)
          < 1e-9
        in
        [
          entry.Catalog.name;
          Report.float_cell (pst base);
          Report.float_cell (pst best);
          Report.ratio_cell (pst best /. pst base);
          (if equivalent base && equivalent best then "ok"
           else "MISMATCH");
        ])
      Catalog.extended_suite
  in
  Report.table ppf
    ~header:
      [ "workload"; "PST (baseline)"; "PST (VQA+VQM)"; "relative";
        "function preserved" ]
    rows

let readout_extension ppf (ctx : Context.t) =
  Report.section ppf
    "Extension: readout-aware VQA (measured qubits prefer good readout)";
  let rows =
    List.map
      (fun name ->
        let circuit = (Catalog.find name).Catalog.circuit in
        let analyze policy =
          let compiled = Compiler.compile ctx.q20 policy circuit in
          Reliability.analyze ctx.q20 compiled.Compiler.physical
        in
        let plain = analyze Compiler.vqa_vqm in
        let extended = analyze Compiler.vqa_vqm_readout in
        [
          name;
          Report.float_cell plain.Reliability.measure_success;
          Report.float_cell extended.Reliability.measure_success;
          Report.ratio_cell (extended.Reliability.pst /. plain.Reliability.pst);
        ])
      [ "bv-16"; "bv-10"; "qft-12"; "GHZ-3" ]
  in
  Report.table ppf
    ~header:
      [ "workload"; "measure succ (VQA+VQM)"; "measure succ (+readout)";
        "PST gain" ]
    rows;
  Format.fprintf ppf
    "@[<v>[the paper's VQA optimizes two-qubit links only; folding \
     readout survival into region selection recovers measurement \
     fidelity where the program leaves placement freedom (small \
     programs); wide programs have no region choice and are \
     unaffected]@,@]"

let alap ppf (ctx : Context.t) =
  Report.section ppf
    "Extension: ALAP scheduling (delayed state preparation) vs ASAP";
  let rows =
    List.map
      (fun name ->
        let circuit = (Catalog.find name).Catalog.circuit in
        let compiled = Compiler.compile ctx.q20 Compiler.vqa_vqm circuit in
        let physical = compiled.Compiler.physical in
        let asap = Reliability.analyze ctx.q20 physical in
        let alap = Reliability.analyze ~alap:true ctx.q20 physical in
        [
          name;
          Report.float_cell asap.Reliability.coherence_survival;
          Report.float_cell alap.Reliability.coherence_survival;
          Report.ratio_cell (alap.Reliability.pst /. asap.Reliability.pst);
        ])
      [ "bv-16"; "bv-20"; "qft-12"; "alu" ]
  in
  Report.table ppf
    ~header:
      [ "workload"; "coherence survival (ASAP)"; "coherence survival (ALAP)";
        "PST gain" ]
    rows;
  Format.fprintf ppf
    "@[<v>[a |0> qubit does not decohere, so pushing preparation later \
     shortens idle exposure at zero gate cost; modest here because the \
     model is calibrated to the paper's gate-error-dominated regime]@,@]"

let staleness ppf (ctx : Context.t) =
  Report.section ppf
    "Extension: benefit of VQA+VQM under stale calibration (bv-16)";
  let module Device = Vqc_device.Device in
  let module History = Vqc_device.History in
  let circuit = (Catalog.find "bv-16").Catalog.circuit in
  let days = History.days ctx.history in
  let device_on day = Device.with_calibration ctx.q20 (History.day ctx.history day) in
  let delays = [ 0; 1; 3; 7; 14 ] in
  let rows =
    List.map
      (fun delay ->
        (* compile on day d, run on day d+delay; average over a few
           starting days *)
        let starts = [ 0; 10; 20; 30 ] in
        let benefits =
          List.map
            (fun start ->
              let run_day = min (days - 1) (start + delay) in
              let compile_device = device_on start in
              let run_device = device_on run_day in
              let pst policy =
                let compiled = Compiler.compile compile_device policy circuit in
                Reliability.pst run_device compiled.Compiler.physical
              in
              pst Compiler.vqa_vqm /. pst Compiler.baseline)
            starts
        in
        [
          string_of_int delay;
          Report.ratio_cell (Vqc_sim.Metrics.geomean benefits);
        ])
      delays
  in
  Report.table ppf
    ~header:[ "calibration age (days)"; "relative PST (geomean of 4 runs)" ]
    rows;
  Format.fprintf ppf
    "@[<v>[the paper's runtime model recompiles at every calibration \
     cycle (footnote 2); this is what that discipline buys]@,@]"

let seed_sweep ppf (outer : Context.t) =
  Report.section ppf
    "Seed sweep: VQA+VQM benefit across ten synthetic chips";
  let seeds = List.init 10 (fun i -> i + 1) in
  let workloads = [ "bv-16"; "bv-20"; "qft-12"; "rnd-SD"; "rnd-LD"; "alu" ] in
  (* one task per seed: build that chip and score every workload on it;
     the pool returns the per-seed columns in seed order *)
  let columns =
    Vqc_engine.Pool.with_pool ~jobs:outer.jobs (fun pool ->
        Vqc_engine.Pool.map pool
          ~f:(fun _ seed ->
            let ctx = Context.make ~seed in
            List.map
              (fun name ->
                let circuit = (Catalog.find name).Catalog.circuit in
                let pst policy =
                  let compiled = Compiler.compile ctx.q20 policy circuit in
                  Reliability.pst ctx.q20 compiled.Compiler.physical
                in
                pst Compiler.vqa_vqm /. pst Compiler.baseline)
              workloads)
          seeds)
  in
  let rows =
    List.mapi
      (fun i name ->
        let benefits = List.map (fun column -> List.nth column i) columns in
        [
          name;
          Report.ratio_cell (Vqc_sim.Metrics.geomean benefits);
          Report.ratio_cell (List.fold_left Float.min infinity benefits);
          Report.ratio_cell (List.fold_left Float.max 0.0 benefits);
        ])
      workloads
  in
  Report.table ppf ~header:[ "workload"; "geomean"; "min"; "max" ] rows;
  Format.fprintf ppf
    "@[<v>[individual chips vary the way real machines do; the paper \
     reports one machine's numbers]@,@]"

let sabre ppf (ctx : Context.t) =
  Report.section ppf
    "Extension: layered A* (this paper) vs SABRE-style lookahead routing";
  let rows =
    List.map
      (fun name ->
        let circuit = (Catalog.find name).Catalog.circuit in
        let evaluate policy =
          let compiled = Compiler.compile ctx.q20 policy circuit in
          ( Reliability.pst ctx.q20 compiled.Compiler.physical,
            Compiler.swap_overhead compiled )
        in
        let base, _ = evaluate Compiler.baseline in
        let vqa, _ = evaluate Compiler.vqa_vqm in
        let sabre_pst, sabre_swaps = evaluate Compiler.sabre in
        let noise_pst, noise_swaps = evaluate Compiler.noise_sabre in
        [
          name;
          Report.ratio_cell 1.0;
          Report.ratio_cell (vqa /. base);
          Printf.sprintf "%s (%d sw)" (Report.ratio_cell (sabre_pst /. base))
            sabre_swaps;
          Printf.sprintf "%s (%d sw)" (Report.ratio_cell (noise_pst /. base))
            noise_swaps;
        ])
      [ "bv-16"; "bv-20"; "qft-12"; "rnd-SD"; "rnd-LD"; "alu" ]
  in
  Report.table ppf
    ~header:[ "workload"; "baseline"; "VQA+VQM"; "SABRE"; "noise-SABRE" ]
    rows;
  Format.fprintf ppf
    "@[<v>[noise-SABRE = variability-aware placement + lookahead routing: \
     the production lineage; its wins over the paper's A* formulation \
     show how much the relative-PST figures depend on router strength]@,@]"

let bridge ppf (ctx : Context.t) =
  Report.section ppf "Extension: bridged CNOT execution vs plain VQM";
  let module Circuit = Vqc_circuit.Circuit in
  let rows =
    List.map
      (fun name ->
        let circuit = (Catalog.find name).Catalog.circuit in
        let evaluate policy =
          let compiled = Compiler.compile ctx.q20 policy circuit in
          let stats = Circuit.stats compiled.Compiler.physical in
          ( Reliability.pst ctx.q20 compiled.Compiler.physical,
            stats.Circuit.swap_gates,
            stats.Circuit.cnot_gates )
        in
        let vqm_pst, vqm_swaps, vqm_cx = evaluate Compiler.vqm in
        let bridge_pst, bridge_swaps, bridge_cx = evaluate Compiler.vqm_bridge in
        [
          name;
          Printf.sprintf "%d swaps / %d cx" vqm_swaps vqm_cx;
          Printf.sprintf "%d swaps / %d cx" bridge_swaps bridge_cx;
          Report.ratio_cell (bridge_pst /. vqm_pst);
        ])
      [ "bv-16"; "bv-20"; "qft-12"; "rnd-LD"; "alu" ]
  in
  Report.table ppf
    ~header:[ "workload"; "VQM"; "VQM + bridges"; "PST gain" ]
    rows

let topology ppf (ctx : Context.t) =
  Report.section ppf
    "Extension: VQA+VQM benefit across coupling-map generations";
  let module Device = Vqc_device.Device in
  let module Topologies = Vqc_device.Topologies in
  let module Calibration_model = Vqc_device.Calibration_model in
  let machines =
    [
      ("q20-tokyo (diagonals)", Topologies.ibm_q20_tokyo, 20);
      ("melbourne-style ladder (14q)", Topologies.ibm_q16_melbourne, 14);
      ("bristlecone-style 4x5", Topologies.bristlecone_like ~rows:4 ~cols:5, 20);
      ("heavy-hex falcon (27q)", Topologies.heavy_hex_27, 27);
    ]
  in
  let rows =
    List.map
      (fun (label, coupling, n) ->
        let rng = Vqc_rng.Rng.make (ctx.seed + 31) in
        let calibration = Calibration_model.generate rng ~coupling n in
        let device = Device.make ~name:label ~coupling calibration in
        let benefit name =
          let circuit = (Catalog.find name).Catalog.circuit in
          let pst policy =
            let compiled = Compiler.compile device policy circuit in
            Reliability.pst device compiled.Compiler.physical
          in
          pst Compiler.vqa_vqm /. pst Compiler.baseline
        in
        let degree =
          2.0 *. float_of_int (List.length coupling) /. float_of_int n
        in
        [
          label;
          Printf.sprintf "%.1f" degree;
          Report.ratio_cell (benefit "bv-10");
          Report.ratio_cell (benefit "qft-10");
          Report.ratio_cell (benefit "alu-10");
        ])
      machines
  in
  Report.table ppf
    ~header:[ "machine"; "avg degree"; "bv-10"; "qft-10"; "alu-10" ]
    rows;
  Format.fprintf ppf
    "@[<v>[same calibration statistics on every map; only the coupling \
     graph changes]@,@]"

let trajectory ppf (ctx : Context.t) =
  Report.section ppf
    "Extension: observed answer accuracy under noisy-trajectory simulation \
     (IBM-Q5 model, 20000 trials)";
  let module Sv = Vqc_statevector.Statevector in
  let module Trajectory = Vqc_statevector.Trajectory in
  let module Density = Vqc_statevector.Density in
  let rows =
    List.map
      (fun (entry : Catalog.entry) ->
        let circuit = entry.Catalog.circuit in
        let ideal = Sv.measurement_distribution circuit in
        (* exact support accuracy from the density-matrix channel engine *)
        let exact_accuracy physical =
          let exact = Density.noisy_measurement_distribution ctx.q5 physical in
          let support = List.map fst ideal in
          List.fold_left
            (fun acc (outcome, p) ->
              if List.mem outcome support then acc +. p else acc)
            0.0 exact
        in
        let evaluate policy =
          let compiled = Compiler.compile ctx.q5 policy circuit in
          let physical = compiled.Compiler.physical in
          let pst = Reliability.pst ctx.q5 physical in
          let histogram =
            Trajectory.run ~trials:20_000
              (Rng.make (ctx.seed + 77))
              ctx.q5 physical
          in
          (pst, Trajectory.support_accuracy ~ideal histogram,
           exact_accuracy physical)
        in
        let base_pst, base_acc, base_exact = evaluate Compiler.baseline in
        let _, best_acc, best_exact = evaluate Compiler.vqa_vqm in
        [
          entry.Catalog.name;
          Report.float_cell ~digits:2 base_pst;
          Report.float_cell ~digits:2 base_acc;
          Report.float_cell ~digits:2 base_exact;
          Report.float_cell ~digits:2 best_acc;
          Report.float_cell ~digits:2 best_exact;
          Report.ratio_cell (best_acc /. base_acc);
        ])
      Catalog.q5_suite
  in
  Report.table ppf
    ~header:
      [ "benchmark"; "base PST"; "base P(ok) sampled"; "base P(ok) exact";
        "vqa P(ok) sampled"; "vqa P(ok) exact"; "accuracy gain" ]
    rows;
  Format.fprintf ppf
    "@[<v>[P(correct) >= PST: errors the algorithm tolerates still \
     return the right answer -- the paper's PST is the conservative \
     bound]@,@]";
  (* readout mitigation stacks on top of the compile-time policies *)
  let module Mitigation = Vqc_statevector.Mitigation in
  let mitigation_rows =
    List.map
      (fun (entry : Catalog.entry) ->
        let circuit = entry.Catalog.circuit in
        let ideal = Sv.measurement_distribution circuit in
        let compiled = Compiler.compile ctx.q5 Compiler.vqa_vqm circuit in
        let physical = compiled.Compiler.physical in
        let histogram =
          Trajectory.run ~trials:20_000 (Rng.make (ctx.seed + 78)) ctx.q5 physical
        in
        let support frequencies =
          let wanted = List.map fst ideal in
          List.fold_left
            (fun acc (o, p) -> if List.mem o wanted then acc +. p else acc)
            0.0 frequencies
        in
        let raw = support (Trajectory.frequencies histogram) in
        let mitigated =
          support (Mitigation.correct_histogram ctx.q5 physical histogram)
        in
        [
          entry.Catalog.name;
          Report.float_cell ~digits:2 raw;
          Report.float_cell ~digits:2 mitigated;
        ])
      Catalog.q5_suite
  in
  Format.fprintf ppf
    "@[<v>readout mitigation on top of VQA+VQM (confusion-matrix \
     inversion):@,@]";
  Report.table ppf
    ~header:[ "benchmark"; "P(ok) raw"; "P(ok) mitigated" ]
    mitigation_rows

let peephole ppf (ctx : Context.t) =
  Report.section ppf
    "Extension: peephole simplification of routed circuits";
  let module Peephole = Vqc_opt.Peephole in
  let module Circuit = Vqc_circuit.Circuit in
  let rows =
    List.concat_map
      (fun name ->
        let circuit = (Catalog.find name).Catalog.circuit in
        List.map
          (fun policy ->
            let compiled = Compiler.compile ctx.q20 policy circuit in
            let physical = compiled.Compiler.physical in
            let optimized, stats = Peephole.optimize_with_stats physical in
            let pst c = Reliability.pst ctx.q20 c in
            [
              name;
              policy.Compiler.label;
              string_of_int (Circuit.length physical);
              string_of_int (Circuit.length optimized);
              string_of_int stats.Peephole.cancelled;
              Report.ratio_cell (pst optimized /. pst physical);
            ])
          [ Compiler.baseline; Compiler.vqa_vqm ])
      [ "bv-16"; "qft-12"; "alu"; "grover-3" ]
  in
  Report.table ppf
    ~header:
      [ "workload"; "policy"; "gates"; "after peephole"; "cancelled";
        "PST gain" ]
    rows

let crosstalk ppf (ctx : Context.t) =
  Report.section ppf
    "Extension: crosstalk between simultaneous two-qubit gates";
  let module Crosstalk = Vqc_sim.Crosstalk in
  let rows =
    List.concat_map
      (fun name ->
        let circuit = (Catalog.find name).Catalog.circuit in
        List.map
          (fun strength ->
            let pst policy =
              let compiled = Compiler.compile ctx.q20 policy circuit in
              Crosstalk.pst ~strength ctx.q20 compiled.Compiler.physical
            in
            let base = pst Compiler.baseline in
            [
              name;
              Printf.sprintf "%.1f" strength;
              Report.float_cell base;
              Report.ratio_cell (pst Compiler.vqa_vqm /. base);
            ])
          [ 0.0; 0.3; 1.0 ])
      [ "bv-16"; "qft-12" ]
  in
  Report.table ppf
    ~header:
      [ "workload"; "crosstalk strength"; "baseline PST"; "VQA+VQM benefit" ]
    rows;
  Format.fprintf ppf
    "@[<v>[strength 0 reproduces the paper's independent-error model; the \
     paper lists correlations as an open limitation (Section 9)]@,@]"

let calibration_model ppf (ctx : Context.t) =
  Report.section ppf
    "Ablation: calibration-model shape (mixture vs naive log-normal fit)";
  let module Device = Vqc_device.Device in
  let module Calibration = Vqc_device.Calibration in
  let module Topologies = Vqc_device.Topologies in
  let coupling = Topologies.ibm_q20_tokyo in
  (* naive model: i.i.d. log-normal links fit to the paper's mean/std *)
  let lognormal_device seed =
    let rng = Rng.make seed in
    let c = Calibration.create 20 in
    List.iter
      (fun (u, v) ->
        let e = Rng.lognormal rng ~mean:0.043 ~std:0.0302 in
        Calibration.set_link_error c u v (Float.min 0.3 (Float.max 0.005 e)))
      coupling;
    Device.make ~name:"q20-lognormal" ~coupling c
  in
  let benefit device name =
    let circuit = (Catalog.find name).Catalog.circuit in
    let pst policy =
      let compiled = Compiler.compile device policy circuit in
      Reliability.pst device compiled.Compiler.physical
    in
    pst Compiler.vqa_vqm /. pst Compiler.baseline
  in
  let rows =
    List.concat_map
      (fun name ->
        [
          [
            name; "core+defect mixture (default)";
            Report.ratio_cell (benefit ctx.q20 name);
          ];
          [
            name; "i.i.d. log-normal fit";
            Report.ratio_cell (benefit (lognormal_device ctx.seed) name);
          ];
        ])
      [ "bv-16"; "qft-12" ]
  in
  Report.table ppf ~header:[ "workload"; "link-error model"; "VQA+VQM benefit" ]
    rows;
  Format.fprintf ppf
    "@[<v>[same mean/std either way, different shapes: the benefit is a \
     property of the distribution's tails, not its moments.  With the \
     final displacement-priced router both models land in the same \
     range; an unbiased per-layer-greedy router on the log-normal's fat \
     cheap tail produced 10-600x artifacts during development, which is \
     why the mixture is the documented default]@,@]"

let mc_crosscheck ppf (ctx : Context.t) =
  Report.section ppf "Ablation: Monte-Carlo vs analytic PST";
  let cases =
    [ ("bv-16", Compiler.baseline); ("bv-16", Compiler.vqa_vqm);
      ("alu", Compiler.vqa_vqm); ("GHZ-3", Compiler.baseline) ]
  in
  let compile (name, policy) =
    let device = if name = "GHZ-3" then ctx.q5 else ctx.q20 in
    let circuit = (Catalog.find name).Catalog.circuit in
    let compiled = Compiler.compile device policy circuit in
    let analytic = Reliability.pst device compiled.Compiler.physical in
    (name, policy, device, compiled.Compiler.physical, analytic)
  in
  match ctx.Context.estimator with
  | None ->
    (* the historical fixed-trials table — byte-exact (golden-pinned) *)
    let rows =
      List.map
        (fun case ->
          let name, policy, device, physical, analytic = compile case in
          let mc =
            Monte_carlo.run ~jobs:ctx.jobs ~trials:200_000
              (Rng.make (ctx.seed + 99))
              device physical
          in
          [
            name;
            policy.Compiler.label;
            Report.float_cell analytic;
            Printf.sprintf "%.4f +/- %.4f" mc.Monte_carlo.pst
              mc.Monte_carlo.ci95;
          ])
        cases
    in
    Report.table ppf
      ~header:[ "workload"; "policy"; "analytic PST"; "monte-carlo PST" ]
      rows
  | Some config ->
    let rows =
      List.map
        (fun case ->
          let name, policy, device, physical, analytic = compile case in
          let e =
            Monte_carlo.run_adaptive ~jobs:ctx.jobs ~config
              (Rng.make (ctx.seed + 99))
              device physical
          in
          [
            name;
            policy.Compiler.label;
            Report.float_cell analytic;
            Report.estimate_cell e;
            Printf.sprintf "%d/%d" e.Estimator.trials e.Estimator.budget;
            Estimator.stop_reason_to_string e.Estimator.stop;
          ])
        cases
    in
    Report.table ppf
      ~header:
        [ "workload"; "policy"; "analytic PST"; "adaptive MC [95% CI]";
          "trials/budget"; "stop" ]
      rows

let estimator_study ppf (ctx : Context.t) =
  Report.section ppf
    "Adaptive estimator: trials-to-target per workload (VQA+VQM on Q20)";
  let config =
    match ctx.Context.estimator with
    | Some config -> config
    | None -> Estimator.default_config
  in
  let rows =
    List.map
      (fun (entry : Catalog.entry) ->
        let compiled =
          Compiler.compile ctx.q20 Compiler.vqa_vqm entry.Catalog.circuit
        in
        let physical = compiled.Compiler.physical in
        let analytic = Reliability.pst ctx.q20 physical in
        let e =
          Monte_carlo.run_adaptive ~jobs:ctx.jobs ~config
            (Rng.make (ctx.seed + 101))
            ctx.q20 physical
        in
        [
          entry.Catalog.name;
          Report.float_cell analytic;
          Report.estimate_cell e;
          Printf.sprintf "%.1e" (Estimator.half_width e);
          string_of_int e.Estimator.trials;
          string_of_int (Estimator.trials_saved e);
          Estimator.stop_reason_to_string e.Estimator.stop;
        ])
      Catalog.table1
  in
  Report.table ppf
    ~header:
      [ "workload"; "analytic PST"; "adaptive PST [95% CI]"; "half-width";
        "trials"; "saved"; "stop" ]
    rows;
  Format.fprintf ppf
    "@[<v>[the stopping rule halts at the first %d-trial boundary where \
     the tighter of the Wilson / empirical-Bernstein half-widths reaches \
     the precision target (%.0e at %.0f%%); 'saved' is what adaptivity \
     kept of the %d-trial fixed budget]@,@]"
    config.Estimator.batch_trials config.Estimator.precision
    (100.0 *. config.Estimator.confidence)
    config.Estimator.max_trials

let table ppf ~header rows =
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then
        invalid_arg "Report.table: ragged row")
    rows;
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    rows;
  let render_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Format.fprintf ppf "  ";
        Format.fprintf ppf "%-*s" widths.(i) cell)
      cells;
    Format.fprintf ppf "@,"
  in
  Format.fprintf ppf "@[<v>";
  render_row header;
  let rule = List.init arity (fun i -> String.make widths.(i) '-') in
  render_row rule;
  List.iter render_row rows;
  Format.fprintf ppf "@]"

let histogram ppf ?(bins = 12) ?(width = 50) ~title ~unit_label values =
  if values = [] then invalid_arg "Report.histogram: empty sample";
  if bins < 1 then invalid_arg "Report.histogram: need at least one bin";
  let lo = List.fold_left Float.min (List.hd values) values in
  let hi = List.fold_left Float.max (List.hd values) values in
  let span = if hi > lo then hi -. lo else 1.0 in
  let counts = Array.make bins 0 in
  List.iter
    (fun v ->
      let index = int_of_float (float_of_int bins *. (v -. lo) /. span) in
      let index = min (bins - 1) (max 0 index) in
      counts.(index) <- counts.(index) + 1)
    values;
  let peak = Array.fold_left max 1 counts in
  Format.fprintf ppf "@[<v>%s (n=%d, min=%.4g, max=%.4g %s)@," title
    (List.length values) lo hi unit_label;
  Array.iteri
    (fun i count ->
      let bin_lo = lo +. (span *. float_of_int i /. float_of_int bins) in
      let bin_hi = lo +. (span *. float_of_int (i + 1) /. float_of_int bins) in
      let bar = String.make (width * count / peak) '#' in
      Format.fprintf ppf "  [%8.4g, %8.4g)  %4d  %s@," bin_lo bin_hi count bar)
    counts;
  Format.fprintf ppf "@]"

let series ppf ?(width = 50) ~title points =
  Format.fprintf ppf "@[<v>%s@," title;
  let peak =
    List.fold_left (fun acc (_, v) -> Float.max acc (Float.abs v)) 1e-12 points
  in
  let label_width =
    List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 points
  in
  List.iter
    (fun (label, v) ->
      let bar =
        String.make
          (max 0 (int_of_float (float_of_int width *. Float.abs v /. peak)))
          '#'
      in
      Format.fprintf ppf "  %-*s  %10.4g  %s@," label_width label v bar)
    points;
  Format.fprintf ppf "@]"

let float_cell ?(digits = 4) v = Printf.sprintf "%.*f" digits v

let estimate_cell (e : Vqc_sim.Estimator.estimate) =
  let module E = Vqc_sim.Estimator in
  (* show the interval the stopping rule listened to — the tighter one *)
  let interval =
    if
      E.interval_half_width e.E.wilson <= E.interval_half_width e.E.bernstein
    then e.E.wilson
    else e.E.bernstein
  in
  Printf.sprintf "%.4f [%.4f, %.4f]" e.E.mean interval.E.lower
    interval.E.upper

let ratio_cell v = Printf.sprintf "%.2fx" v

let section ppf title =
  Format.fprintf ppf "@,@[<v>%s@,%s@]@," title
    (String.make (String.length title) '=')

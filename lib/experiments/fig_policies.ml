module Compiler = Vqc_mapper.Compiler
module Reliability = Vqc_sim.Reliability
module Monte_carlo = Vqc_sim.Monte_carlo
module Catalog = Vqc_workloads.Catalog
module Rng = Vqc_rng.Rng

let pst_under device policy circuit =
  let compiled = Compiler.compile device policy circuit in
  Reliability.pst device compiled.Compiler.physical

(* Optional CI column: with an estimator configured on the context, each
   figure's headline policy gains an adaptive Monte-Carlo estimate with
   its confidence interval.  With no estimator (the default) the cell
   list is returned untouched, keeping the golden-pinned output. *)
let with_ci_cell (ctx : Context.t) ~seed_offset physical cells =
  match ctx.Context.estimator with
  | None -> cells
  | Some config ->
    let e =
      Monte_carlo.run_adaptive ~jobs:ctx.jobs ~config
        (Rng.make (ctx.seed + seed_offset))
        ctx.q20 physical
    in
    cells @ [ Report.estimate_cell e ]

let with_ci_header (ctx : Context.t) ~label header =
  match ctx.Context.estimator with
  | None -> header
  | Some _ -> header @ [ label ]

let fig12 ppf (ctx : Context.t) =
  Report.section ppf
    "Figure 12: impact of VQM on PST (relative to variation-unaware baseline)";
  let rows =
    List.map
      (fun (entry : Catalog.entry) ->
        let base = pst_under ctx.q20 Compiler.baseline entry.circuit in
        let vqm_compiled =
          Compiler.compile ctx.q20 Compiler.vqm entry.circuit
        in
        let vqm = Reliability.pst ctx.q20 vqm_compiled.Compiler.physical in
        let limited = pst_under ctx.q20 (Compiler.vqm_limited 4) entry.circuit in
        [
          entry.name;
          Report.float_cell base;
          Report.ratio_cell 1.0;
          Report.ratio_cell (vqm /. base);
          Report.ratio_cell (limited /. base);
        ]
        |> with_ci_cell ctx ~seed_offset:103 vqm_compiled.Compiler.physical)
      Catalog.table1
  in
  Report.table ppf
    ~header:
      (with_ci_header ctx ~label:"VQM MC [95% CI]"
         [ "workload"; "baseline PST"; "baseline"; "VQM"; "VQM (MAH=4)" ])
    rows;
  Format.fprintf ppf
    "@[<v>[paper: every benchmark improves; qft and rnd-LD improve most; \
     MAH=4 tracks unconstrained VQM]@,@]"

let fig13 ppf (ctx : Context.t) =
  Report.section ppf
    "Figure 13: PST of native / baseline / VQM / VQA+VQM (normalized to \
     baseline)";
  let native_seeds = List.init 32 (fun i -> 1000 + i) in
  let rows =
    List.map
      (fun (entry : Catalog.entry) ->
        let base = pst_under ctx.q20 Compiler.baseline entry.circuit in
        let vqm = pst_under ctx.q20 Compiler.vqm entry.circuit in
        let best_compiled =
          Compiler.compile ctx.q20 Compiler.vqa_vqm entry.circuit
        in
        let best = Reliability.pst ctx.q20 best_compiled.Compiler.physical in
        let native_psts =
          List.map
            (fun seed ->
              pst_under ctx.q20 (Compiler.native ~seed) entry.circuit)
            native_seeds
        in
        let count = float_of_int (List.length native_psts) in
        let native_avg = List.fold_left ( +. ) 0.0 native_psts /. count in
        let native_min = List.fold_left Float.min infinity native_psts in
        let native_max = List.fold_left Float.max 0.0 native_psts in
        [
          entry.name;
          Printf.sprintf "%.2fx [%.2f-%.2f]" (native_avg /. base)
            (native_min /. base) (native_max /. base);
          Report.ratio_cell 1.0;
          Report.ratio_cell (vqm /. base);
          Report.ratio_cell (best /. base);
        ]
        |> with_ci_cell ctx ~seed_offset:104 best_compiled.Compiler.physical)
      Catalog.table1
  in
  Report.table ppf
    ~header:
      (with_ci_header ctx ~label:"VQA+VQM MC [95% CI]"
         [ "workload"; "IBM native (avg [min-max])"; "baseline"; "VQM";
           "VQA+VQM" ])
    rows;
  Format.fprintf ppf
    "@[<v>[paper: baseline ~4x over native; VQA+VQM up to 1.7x over \
     baseline and up to 7x over native]@,@]";
  (* where VQA put qft-12 on the chip *)
  let compiled =
    Compiler.compile ctx.q20 Compiler.vqa_vqm
      (Catalog.find "qft-12").Catalog.circuit
  in
  let region =
    Vqc_mapper.Layout.used_physicals compiled.Compiler.initial
  in
  Format.fprintf ppf "@[<v>VQA's region for qft-12 (bracketed qubits):@,@]";
  Chip_render.q20 ~highlight:region ppf ctx.q20
